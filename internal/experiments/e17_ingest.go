package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ingest"
	"repro/internal/metrics"
)

func init() {
	register(Experiment{
		ID:    "E17",
		Title: "Streaming ingest: pipelined vs serial publish rounds, queue depth × bee count",
		Claim: "keeping the index fresh against a web-scale corpus needs a staged crawler pipeline: with batch N+1's commit overlapping round N's reveal, ingest throughput is bounded by the slower phase instead of their sum",
		Run:   runE17,
	})
}

// e17Crawl drives one full crawl of a generated corpus through real
// cluster rounds and returns the pipeline's stats. Every URL is seeded,
// so the crawl covers the whole corpus regardless of link shape.
func e17Crawl(seed uint64, pages, bees, depth, batch int, serial bool) ingest.Stats {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.NumPeers = 16
	cfg.NumBees = bees
	c := core.NewCluster(cfg)
	owner := c.NewAccount("crawler", 1<<40)
	c.Seal()

	corp := corpus.Generate(corpus.Config{
		Seed:       seed,
		NumDocs:    pages,
		VocabSize:  4000,
		ZipfS:      1.0,
		MeanDocLen: 40, // light documents: the pipeline, not Analyze, is under test
		MeanLinks:  3,
	})
	seeds := make([]string, len(corp.Docs))
	for i := range corp.Docs {
		seeds[i] = corp.Docs[i].URL
	}
	st, err := ingest.Crawl(context.Background(),
		ingest.CorpusSource(corp), ingest.NewClusterSink(c, owner), seeds,
		ingest.Options{
			Seed:         seed,
			FetchWorkers: 8,
			QueueDepth:   depth,
			BatchSize:    batch,
			Serial:       serial,
		})
	if err != nil {
		panic(fmt.Sprintf("E17 crawl (%d pages, %d bees): %v", pages, bees, err))
	}
	return st
}

// runE17 measures the streaming ingest pipeline end to end against real
// publish rounds.
//
// Headline: a 2048-page crawl at 8 bees, serial vs pipelined rounds.
// Both runs issue the identical chain call sequence (the DHT ends up
// byte-identical — TestIngestPipelineDeterminism), so the makespan gap
// is purely the overlap of batch N+1's commit with round N's reveal:
// the crawl runs at the slower phase's pace instead of the sum.
//
// Sweep: queue depth × bee count at a smaller crawl. Depth buys the
// fetchers room to run ahead of the indexer (less stall wait); bees cut
// the commit wave, moving the bottleneck back toward fetch.
func runE17(seed uint64) []*metrics.Table {
	const (
		headlinePages = 2048
		headlineBatch = 64
		sweepPages    = 384
		sweepBatch    = 32
	)

	headline := metrics.NewTable(
		fmt.Sprintf("E17 — streaming ingest, pipelined vs serial rounds (%d pages, 8 bees, queue 8, batch %d)", headlinePages, headlineBatch),
		"rounds mode", "published", "batches", "sim makespan", "sim pages/s", "queue wait", "stall wait", "speedup")
	for _, serial := range []bool{true, false} {
		mode := "pipelined"
		if serial {
			mode = "serial"
		}
		st := e17Crawl(seed, headlinePages, 8, 8, headlineBatch, serial)
		headline.AddRow(mode, st.Published, st.Batches,
			st.Makespan.String(), st.PagesPerSec(),
			st.QueueWait.String(), st.StallWait.String(), st.Speedup())
	}

	sweep := metrics.NewTable(
		fmt.Sprintf("E17 — ingest sweep, queue depth × bees (%d pages, batch %d, pipelined)", sweepPages, sweepBatch),
		"bees", "queue depth", "sim makespan", "sim pages/s", "queue wait", "stall wait", "depth max", "speedup")
	for _, bees := range []int{4, 8} {
		for _, depth := range []int{2, 8} {
			st := e17Crawl(seed, sweepPages, bees, depth, sweepBatch, false)
			sweep.AddRow(bees, depth,
				st.Makespan.String(), st.PagesPerSec(),
				st.QueueWait.String(), st.StallWait.String(),
				st.QueueDepthMax, st.Speedup())
		}
	}
	return []*metrics.Table{headline, sweep}
}
