package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/rank"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E19",
		Title: "Write-path scaling: tiered vs monolithic compaction, delta vs full rank epochs",
		Claim: "indexing a growing web cannot pay write costs that grow with index size: steady-state bytes rewritten per publish round must stay flat under compaction, and rank refresh must cost the edit's neighborhood, not the whole graph",
		Run:   runE19,
	})
}

// e19IngestOutcome summarizes one steady-ingest run for the compaction
// table: the average CompactedBytes per round over the LAST quartile of
// rounds (the steady state, past warm-up) and the run's cumulative
// write amplification.
type e19IngestOutcome struct {
	lastQuartile float64
	amp          float64
}

// e19Ingest publishes `rounds` uniform batches through real protocol
// rounds under one compaction policy and reads the per-round compacted
// bytes straight off the round receipts.
func e19Ingest(seed uint64, rounds, docsPerRound int, monolithic bool) e19IngestOutcome {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.NumPeers = 10
	cfg.NumBees = 3
	cfg.NumShards = 4
	cfg.MonolithicCompaction = monolithic
	c := core.NewCluster(cfg)
	owner := c.NewAccount("writer", 1<<40)
	c.Seal()

	perRound := make([]float64, 0, rounds)
	doc := 0
	for r := 0; r < rounds; r++ {
		pages := make([]core.BatchPage, docsPerRound)
		for j := range pages {
			url := fmt.Sprintf("dweb://e19/%05d", doc)
			var links []string
			if doc > 0 {
				links = []string{fmt.Sprintf("dweb://e19/%05d", doc-1)}
			}
			pages[j] = core.BatchPage{
				URL:   url,
				Text:  fmt.Sprintf("write path steady ingest corpus document %05d round %03d", doc, r),
				Links: links,
			}
			doc++
		}
		rr, err := c.IndexBatch(owner, pages)
		if err != nil {
			panic(fmt.Sprintf("E19 ingest round %d (monolithic=%v): %v", r, monolithic, err))
		}
		perRound = append(perRound, float64(rr.CompactedBytes))
	}

	var sum float64
	q := rounds - rounds/4 // last quartile: steady state, past warm-up
	for _, b := range perRound[q:] {
		sum += b
	}
	return e19IngestOutcome{
		lastQuartile: sum / float64(len(perRound[q:])),
		amp:          c.WriteStats().Amplification(),
	}
}

// e19Hubs and e19Mids bound the head of the e19Links hierarchy.
const (
	e19Hubs = 16
	e19Mids = 32
)

// e19URL names page i of the rank corpus.
func e19URL(i int) string { return fmt.Sprintf("dweb://e19r/%05d", i) }

// e19Links builds a deterministic hierarchical link map of n pages, the
// shape that makes incremental rank worthwhile (and that link graphs
// actually have): a small head of hub pages linking among themselves, a
// mid tier linking up into the hubs, and a long tail of leaves linking
// to hubs and mids but never to other leaves. An edit's forward closure
// is then the edited pages plus the head — O(head), not O(n) — which is
// exactly the locality a delta epoch exploits. Hub in-links are drawn
// from a skewed distribution so the rank head is well separated (no
// near-ties for the top-10 to flip on).
func e19Links(seed uint64, n int) map[string][]string {
	rng := xrand.New(seed)
	links := make(map[string][]string, n)
	hub := func() string { return e19URL(rng.Intn(rng.Intn(e19Hubs) + 1)) }
	for i := 0; i < n; i++ {
		switch {
		case i < e19Hubs:
			links[e19URL(i)] = []string{e19URL((i + 1) % e19Hubs)} // head cycle: hubs stay non-dangling
		case i < e19Hubs+e19Mids:
			links[e19URL(i)] = []string{hub(), hub()}
		default:
			links[e19URL(i)] = []string{
				hub(),
				e19URL(e19Hubs + rng.Intn(e19Mids)),
				e19URL(e19Hubs + rng.Intn(e19Mids)),
			}
		}
	}
	return links
}

// e19RankRow measures one graph size for the rank table: edit a fixed
// handful of pages, then compare a full recompute's cost against the
// delta epoch's, as iterations × nodes-updated — the work metric both
// paths share.
type e19RankRow struct {
	n          int
	dirty      int
	active     int
	fullCost   int
	deltaCost  int
	drift      float64
	exactTop10 bool
}

func e19Rank(seed uint64, n int) e19RankRow {
	const edits = 8
	links := e19Links(seed, n)
	oldG := rank.NewGraph(links)
	oldRes := rank.Compute(oldG, rank.DefaultOptions())

	// The edit a delta epoch sees mid-crawl: a handful of new leaf pages
	// arriving, each linking up into the existing hierarchy, plus a few
	// existing leaves re-pointed. The dirty closure is the edited pages
	// and the head they link into.
	var dirtyURLs []string
	for k := 0; k < edits; k++ {
		var u string
		if k < edits/2 {
			u = e19URL(n + k) // new page joining the graph
		} else {
			u = e19URL(e19Hubs + e19Mids + (k*(n/edits))%(n-e19Hubs-e19Mids)) // existing leaf re-pointed
		}
		links[u] = []string{
			e19URL(k % e19Hubs),
			e19URL(e19Hubs + (k*7)%e19Mids),
		}
		dirtyURLs = append(dirtyURLs, u)
	}
	newG := rank.NewGraph(links)
	full := rank.Compute(newG, rank.DefaultOptions())

	prev := make([]float64, newG.Size())
	var dirty []int
	for i := 0; i < newG.Size(); i++ {
		if oi, ok := oldG.NodeOf(newG.URL(i)); ok {
			prev[i] = oldRes.Ranks[oi]
		} else {
			dirty = append(dirty, i)
		}
	}
	for _, u := range dirtyURLs {
		if i, ok := newG.NodeOf(u); ok {
			dirty = append(dirty, i)
		}
	}
	res := rank.ComputeDelta(newG, prev, dirty, rank.DefaultOptions())

	var drift float64
	for i := range full.Ranks {
		if d := math.Abs(full.Ranks[i] - res.Ranks[i]); d > drift {
			drift = d
		}
	}
	exact := true
	ft, dt := rank.TopN(full.Ranks, 10), rank.TopN(res.Ranks, 10)
	for i := range ft {
		if ft[i] != dt[i] {
			exact = false
		}
	}
	return e19RankRow{
		n:          newG.Size(),
		dirty:      len(dirtyURLs),
		active:     res.Active,
		fullCost:   full.Iterations * newG.Size(),
		deltaCost:  res.Iterations * res.Active,
		drift:      drift,
		exactTop10: exact,
	}
}

// runE19 produces the two write-path scaling tables.
//
// Compaction: steady ingest at three run lengths × two policies. The
// column that matters is steady-state compacted bytes per round — under
// the monolithic policy it grows with the shard (every firing rewrites
// the whole chain), under the tiered policy it stays flat up to the
// slow log-factor of deeper tiers. The cumulative write-amplification
// column shows the same story as a ratio.
//
// Rank: full vs delta epoch cost (iterations × nodes updated) after a
// fixed 8-page edit (half new pages, half re-pointed leaves), across
// graph sizes. The delta column grows with the edit's closure — the
// edited pages plus the head tier they link into — not with n; drift
// stays within the documented bound and the top-10 ordering is exact.
func runE19(seed uint64) []*metrics.Table {
	const docsPerRound = 16
	compaction := metrics.NewTable(
		fmt.Sprintf("E19 — steady-state compaction cost, tiered vs monolithic (%d docs/round, 4 shards)", docsPerRound),
		"rounds", "mono B/round", "tiered B/round", "mono amp", "tiered amp")
	for _, rounds := range []int{16, 32, 64} {
		mono := e19Ingest(seed, rounds, docsPerRound, true)
		tiered := e19Ingest(seed, rounds, docsPerRound, false)
		compaction.AddRow(rounds,
			fmt.Sprintf("%.0f", mono.lastQuartile),
			fmt.Sprintf("%.0f", tiered.lastQuartile),
			fmt.Sprintf("%.2f", mono.amp),
			fmt.Sprintf("%.2f", tiered.amp))
	}

	rankTable := metrics.NewTable(
		"E19 — rank refresh cost, full vs delta epoch (8 pages edited)",
		"nodes", "dirty", "closure", "full cost", "delta cost", "cost ratio", "L∞ drift", "top-10 exact")
	for _, n := range []int{500, 2000, 8000} {
		row := e19Rank(seed, n)
		rankTable.AddRow(row.n, row.dirty, row.active, row.fullCost, row.deltaCost,
			fmt.Sprintf("%.3f", float64(row.deltaCost)/float64(row.fullCost)),
			fmt.Sprintf("%.2e", row.drift),
			row.exactTop10)
	}
	return []*metrics.Table{compaction, rankTable}
}
