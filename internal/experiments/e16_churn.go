package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

func init() {
	register(Experiment{
		ID:    "E16",
		Title: "Self-healing under churn: completeness and repair traffic, maintenance on vs off",
		Claim: "personal devices come and go, so the index must survive churn: republish and re-seed loops keep results complete where an unmaintained index decays",
		Run:   runE16,
	})
}

// runE16 subjects a deployment to sustained churn — a fresh crash wave
// at every round — and measures what fraction of a marker corpus stays
// searchable, with the self-healing loops on vs off. Replication is
// deliberately lowered to 3 so erosion is visible within a few waves
// (at the default K=8 a crash-only storm almost never blinds a record;
// the robustness is the point, but it makes a table of 1.00s).
//
// Reported per (crash rate, maintenance) configuration:
//
//   - completeness after the first wave and after the last: with
//     maintenance each wave's losses are re-seeded onto survivors before
//     the next wave lands, without it the replica sets only erode;
//   - repair work (records republished, segments re-seeded, segments
//     irrecoverably lost) and the repair traffic in simulated messages —
//     the price of staying complete.
func runE16(seed uint64) []*metrics.Table {
	const (
		peers       = 32
		bees        = 3
		markers     = 10
		rounds      = 6
		replication = 3
	)

	t := metrics.NewTable("E16 — self-healing under churn (replication 3)",
		"crash/round", "maintenance", "compl wave 1", fmt.Sprintf("compl wave %d", rounds),
		"republished", "reseeded", "lost", "repair msgs")

	for _, frac := range []float64{0.10, 0.20} {
		for _, maint := range []bool{false, true} {
			cfg := core.DefaultConfig()
			cfg.Seed = seed
			cfg.NumPeers = peers
			cfg.NumBees = bees
			cfg.DHT.K = replication
			c := core.NewCluster(cfg)
			pub := c.NewAccount("publisher", 1_000_000)
			c.Seal()
			terms := make([]string, 0, markers)
			for i := 0; i < markers; i++ {
				term := fmt.Sprintf("churnsixteen%02d", i)
				terms = append(terms, term)
				if _, err := c.Publish(pub, c.Peers[i%len(c.Peers)],
					fmt.Sprintf("dweb://e16/%d", i), "self healing churn marker "+term, nil); err != nil {
					panic(fmt.Sprintf("E16 publish %d: %v", i, err))
				}
			}
			c.Seal()
			c.RunUntilIdle(8)

			// The plan is installed only after the index is built, so the
			// waves hit a complete deployment. One crash wave per round;
			// every wave samples victims from the current survivors.
			events := make([]netsim.FaultEvent, 0, rounds)
			for r := 0; r < rounds; r++ {
				events = append(events, netsim.FaultEvent{
					At:       time.Duration(r) * cfg.BlockInterval,
					Kind:     netsim.FaultCrash,
					Fraction: frac,
				})
			}
			scope := make([]netsim.NodeID, 0, len(c.Peers))
			for _, p := range c.Peers {
				scope = append(scope, p.Addr())
			}
			c.SetFaultPlan(&netsim.FaultPlan{Seed: seed, Scope: scope, Events: events})

			var first, last float64
			for r := 0; r < rounds; r++ {
				c.Seal()
				compl := searchableFraction(c, terms)
				if r == 0 {
					first = compl
				}
				last = compl
				if maint {
					c.RunMaintenance()
				}
			}
			rs := c.RepairStats()
			t.AddRow(frac, onOff(maint), first, last,
				rs.Republished, rs.Reseeded, rs.SegmentsLost, rs.Cost.Msgs)
		}
	}
	return []*metrics.Table{t}
}

// searchableFraction measures the marker corpus through a fresh
// frontend (cold caches — every measurement pays the real DHT reads)
// attached to a bee, which never churns.
func searchableFraction(c *core.Cluster, terms []string) float64 {
	fe := core.NewFrontend(c, c.Bees[0].Peer)
	hits := 0
	for _, term := range terms {
		resp, err := fe.Execute(core.Query{Raw: term, Mode: core.PlanAll, Limit: 5})
		if err == nil && len(resp.Results) > 0 {
			hits++
		}
	}
	return float64(hits) / float64(len(terms))
}
