package experiments

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/rank"
	"repro/internal/store"
	"repro/internal/vclock"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E5",
		Title: "Freshness: publish-driven vs crawl-driven indexing",
		Claim: "no-crawling, because crawling inevitably reduces the freshness of the search results",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "E6",
		Title: "Tamper-proof content via cryptographic hashes",
		Claim: "tamper-proof contents because each content piece is uniquely identified by a cryptographic hash",
		Run:   runE6,
	})
	register(Experiment{
		ID:    "E7",
		Title: "Index maintenance scaling with worker bees",
		Claim: "worker bees — peers that help update the index",
		Run:   runE7,
	})
	register(Experiment{
		ID:    "E8",
		Title: "Distributed page-rank computation",
		Claim: "worker bees … compute the page ranks",
		Run:   runE8,
	})
}

// runE5 measures time-to-searchable for a stream of page updates under
// QueenBee (publish-driven) and a crawler at several intervals.
func runE5(seed uint64) []*metrics.Table {
	const updates = 20
	rng := xrand.New(seed)

	// QueenBee: publish → rounds until the new term is searchable.
	var qbHist metrics.Histogram
	{
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.NumPeers = 12
		cfg.NumBees = 3
		c := core.NewCluster(cfg)
		pub := c.NewAccount("pub", 1_000_000)
		c.Seal()
		fe := core.NewFrontend(c, c.Peers[2])
		for i := 0; i < updates; i++ {
			// Idle time between updates.
			c.Clock.Advance(time.Duration(rng.Intn(120)) * time.Second)
			marker := fmt.Sprintf("freshmarker%04d", i)
			start := c.Clock.Now()
			if _, err := c.Publish(pub, c.Peers[0], urlOf(i), "page body "+marker, nil); err != nil {
				panic(err)
			}
			c.Seal()
			for r := 0; r < 10; r++ {
				resp, err := fe.Search(marker, 5)
				if err == nil && len(resp.Results) > 0 {
					break
				}
				c.ProcessRound()
			}
			qbHist.AddDuration(c.Clock.Since(start))
		}
	}

	t := metrics.NewTable("E5 — time-to-searchable for page updates",
		"system", "median", "p95", "mean")
	addRow := func(name string, h *metrics.Histogram) {
		t.AddRow(name,
			time.Duration(h.Median()*float64(time.Second)),
			time.Duration(h.Quantile(0.95)*float64(time.Second)),
			time.Duration(h.Mean()*float64(time.Second)))
	}
	addRow("QueenBee (publish-driven)", &qbHist)

	// Crawler at several intervals on a virtual clock.
	for _, interval := range []time.Duration{time.Minute, 10 * time.Minute, 60 * time.Minute} {
		ncfg := netsim.DefaultConfig()
		ncfg.Seed = seed
		net := netsim.New(ncfg)
		net.Register("client", nil)
		clock := vclock.New(time.Time{})
		src := baseline.NewMapSource()
		src.Set("http://seedpage", "initial content")
		e := baseline.NewCentralEngine(net, clock, "server", src, interval)
		e.PerPage = 500 * time.Millisecond // politeness-limited crawling

		var h metrics.Histogram
		crng := xrand.New(seed + 99)
		for i := 0; i < updates; i++ {
			clock.Advance(time.Duration(crng.Intn(int(interval/time.Second)*2)) * time.Second)
			marker := fmt.Sprintf("crawlmarker%04d", i)
			src.Set(fmt.Sprintf("http://page/%d", i), "updated body "+marker)
			start := clock.Now()
			for {
				//detlint:ignore costdrop freshness poll; the table measures staleness time, not traffic
				urls, _, err := e.Search("client", marker, 5)
				if err == nil && len(urls) > 0 {
					break
				}
				clock.Advance(15 * time.Second) // client polls
			}
			h.AddDuration(clock.Since(start))
		}
		addRow(fmt.Sprintf("crawler (interval %s)", interval), &h)
	}
	return []*metrics.Table{t}
}

// runE6: malicious replicas serve modified bytes; hash verification must
// catch every one, and fetches must succeed while an honest replica
// remains.
func runE6(seed uint64) []*metrics.Table {
	const docs = 30
	t := metrics.NewTable("E6 — tamper detection",
		"tampered replicas", "fetch success %", "tampered accepted", "detections")

	for _, tamperers := range []int{0, 1, 2, 3} {
		_, peers := buildStoreSwarm(seed, 24, 0)
		roots := make([]store.CID, docs)
		originals := make([][]byte, docs)
		for i := 0; i < docs; i++ {
			data := []byte(fmt.Sprintf("authentic document %04d with real facts", i))
			originals[i] = data
			//detlint:ignore costdrop corpus population; the table measures tamper detection, not cost
			root, _, err := peers[0].Add(data)
			if err != nil {
				panic(err)
			}
			roots[i] = root
			// Replicate via caches on peers 1..3 so there are 4 providers.
			for j := 1; j <= 3; j++ {
				//detlint:ignore costdrop replica priming; the table measures tamper detection, not cost
				if _, _, err := peers[j].Fetch(root); err != nil {
					panic(err)
				}
			}
		}
		// Corrupt every block on the first `tamperers` replica peers.
		for j := 1; j <= tamperers; j++ {
			for i := 0; i < docs; i++ {
				_, blocks := store.ChunkDocument(originals[i], store.DefaultChunkSize)
				cids := make([]store.CID, 0, len(blocks))
				for cid := range blocks {
					cids = append(cids, cid)
				}
				sort.Slice(cids, func(a, b int) bool { return bytes.Compare(cids[a][:], cids[b][:]) < 0 })
				for _, cid := range cids {
					peers[j].Blocks().Corrupt(cid, store.EncodeLeaf([]byte("FAKE CONTENT INJECTION")))
				}
			}
		}
		ok, accepted := 0, 0
		var detections int64
		reader := peers[20]
		for i, root := range roots {
			//detlint:ignore costdrop tamper-detection probe; the table counts successes and detections
			data, _, err := reader.Fetch(root)
			if err == nil {
				ok++
				if string(data) != string(originals[i]) {
					accepted++
				}
			}
		}
		detections = reader.TamperDetections()
		t.AddRow(tamperers, 100*float64(ok)/docs, accepted, detections)
	}
	return []*metrics.Table{t}
}

// runE7: fixed publishing workload, varying swarm of bees; measures how
// per-bee load (simulated network work) drops as the pool grows.
func runE7(seed uint64) []*metrics.Table {
	const docs = 60
	t := metrics.NewTable("E7 — per-bee load vs pool size",
		"bees", "tasks finalized", "total bee msgs", "max bee msgs", "imbalance", "rounds")

	for _, bees := range []int{1, 2, 4, 8, 16} {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.NumPeers = 12
		cfg.NumBees = bees
		c := core.NewCluster(cfg)
		pub := c.NewAccount("pub", 1_000_000)
		c.Seal()
		rounds := 0
		for i := 0; i < docs; i++ {
			if _, err := c.Publish(pub, c.Peers[i%len(c.Peers)], urlOf(i), fmt.Sprintf("body of document %04d with assorted content", i), nil); err != nil {
				panic(err)
			}
			if i%20 == 19 {
				c.Seal()
				rounds += c.RunUntilIdle(4)
			}
		}
		c.Seal()
		rounds += c.RunUntilIdle(6)

		_, finalized, _ := c.QB.TaskCounts()
		total, maxMsgs := 0, 0
		for _, b := range c.Bees {
			m := b.Cost.Msgs
			total += m
			if m > maxMsgs {
				maxMsgs = m
			}
		}
		imbalance := 0.0
		if total > 0 && bees > 0 {
			mean := float64(total) / float64(bees)
			imbalance = float64(maxMsgs) / mean
		}
		t.AddRow(bees, finalized, total, maxMsgs, imbalance, rounds)
	}
	return []*metrics.Table{t, runE7b(seed)}
}

// runE7b measures the concurrent write-side round engine: the same
// ingest workload, driven round by round, reporting the simulated
// makespan of the parallel waves (bee commit compute, shard
// materialization) against what a sequential driver would pay — the
// round receipts carry both. Pages/s is measured in simulated time
// against the wave makespan.
func runE7b(seed uint64) *metrics.Table {
	const docs = 48
	t := metrics.NewTable("E7b — concurrent write-side rounds (simulated makespan)",
		"bees", "serial", "wave", "speedup", "pages/s (sim)", "ptr writes")

	for _, bees := range []int{1, 2, 4, 8} {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		cfg.NumPeers = 12
		cfg.NumBees = bees
		c := core.NewCluster(cfg)
		pub := c.NewAccount("pub", 1_000_000)
		c.Seal()
		for i := 0; i < docs; i++ {
			if _, err := c.Publish(pub, c.Peers[i%len(c.Peers)], urlOf(i),
				fmt.Sprintf("ingest round workload document %04d with assorted content", i), nil); err != nil {
				panic(err)
			}
		}
		c.Seal()

		var serial, wave time.Duration
		ptrWrites := 0
		for r := 0; r < 8; r++ {
			rr := c.ProcessRoundReceipt()
			serial += rr.Serial().Latency
			wave += rr.Wave().Latency
			ptrWrites += rr.PointerWrites
			if open, _, _ := c.QB.TaskCounts(); open == 0 {
				break
			}
		}
		speedup := 0.0
		if wave > 0 {
			speedup = float64(serial) / float64(wave)
		}
		pagesPerSec := 0.0
		if wave > 0 {
			pagesPerSec = float64(docs) / wave.Seconds()
		}
		t.AddRow(bees, serial, wave, speedup, pagesPerSec, ptrWrites)
	}
	return t
}

// runE8: sequential vs blocked equality, convergence curve, warm-start
// iterations, and the quorum verification overhead.
func runE8(seed uint64) []*metrics.Table {
	links := make(map[string][]string)
	rng := xrand.New(seed)
	const n = 300
	for i := 0; i < n; i++ {
		var out []string
		for j := 0; j < 1+rng.Intn(4); j++ {
			out = append(out, urlOf(rng.Intn(n)))
		}
		links[urlOf(i)] = out
	}
	g := rank.NewGraph(links)
	opts := rank.DefaultOptions()
	seq := rank.Compute(g, opts)

	t := metrics.NewTable("E8 — distributed page rank",
		"partitions", "iterations", "block msgs", "max |Δ| vs sequential")
	for _, p := range []int{1, 2, 4, 8} {
		blocked, msgs := rank.ComputeBlocked(g, p, opts)
		maxDiff := 0.0
		for i := range seq.Ranks {
			if d := math.Abs(seq.Ranks[i] - blocked.Ranks[i]); d > maxDiff {
				maxDiff = d
			}
		}
		t.AddRow(p, blocked.Iterations, msgs, maxDiff)
	}

	t2 := metrics.NewTable("E8b — convergence (L1 residual by iteration)",
		"iteration", "residual")
	for i, r := range seq.Residuals {
		if i < 12 || i == len(seq.Residuals)-1 {
			t2.AddRow(i+1, r)
		}
	}

	// Warm start after a small graph change.
	links[urlOf(n)] = []string{urlOf(0)}
	g2 := rank.NewGraph(links)
	cold := rank.Compute(g2, opts)
	warm := rank.ComputeFrom(g2, seq.Ranks, opts)
	t3 := metrics.NewTable("E8c — incremental recomputation", "start", "iterations")
	t3.AddRow("cold (uniform)", cold.Iterations)
	t3.AddRow("warm (previous vector)", warm.Iterations)

	// Verification overhead: quorum q bees all compute the full vector.
	t4 := metrics.NewTable("E8d — verification overhead", "quorum", "redundant compute ×")
	for _, q := range []int{1, 3, 5} {
		t4.AddRow(q, q)
	}
	return []*metrics.Table{t, t2, t3, t4}
}
