// Package experiments regenerates every table and figure of the
// reproduction (E1–E13 in DESIGN.md). Each experiment is a pure function
// from a seed to metrics tables, shared by cmd/experiments (which prints
// them) and the root benchmarks (which time them).
//
// The paper is a vision paper without numeric tables; each experiment
// operationalizes one claim the paper commits to. EXPERIMENTS.md records
// the claim → measurement mapping and the observed results.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
)

// Experiment is one runnable table/figure generator.
type Experiment struct {
	ID    string
	Title string
	Claim string // the paper sentence this experiment tests
	Run   func(seed uint64) []*metrics.Table
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in ID order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return idOrder(out[i].ID) < idOrder(out[j].ID) })
	return out
}

// idOrder sorts E2 before E10.
func idOrder(id string) int {
	var n int
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
