package experiments

import (
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/baseline"
	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/metrics"
	"repro/internal/vclock"
	"repro/internal/xrand"
)

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "Inverted-list intersection kernels (frontend)",
		Claim: "composing the search results by intersecting the matched inverted lists",
		Run:   runE9,
	})
	register(Experiment{
		ID:    "E10",
		Title: "Incentive fairness: honey vs popularity",
		Claim: "we need to reward those whose websites are popular … a sensible scheme is needed",
		Run:   runE10,
	})
	register(Experiment{
		ID:    "E11",
		Title: "Collusion attack vs quorum defense",
		Claim: "an attack from colluded worker bees that aim at manipulating QueenBee's indexes or page ranking",
		Run:   runE11,
	})
	register(Experiment{
		ID:    "E12",
		Title: "Scraper-site attack vs duplicate defense",
		Claim: "scrapper site attack may exist that tries to mirror popular websites for QueenBee's honey",
		Run:   runE12,
	})
	register(Experiment{
		ID:    "E13",
		Title: "Ad marketplace: pay-per-click and revenue sharing",
		Claim: "advertisers … pay by the number of clicks; the ad revenue is shared among the content creators and worker bees",
		Run:   runE13,
	})
}

// runE9 compares linear-merge and galloping intersection over skewed
// lists (the ablation A1). Times are wall-clock nanoseconds per op.
func runE9(seed uint64) []*metrics.Table {
	rng := xrand.New(seed)
	t := metrics.NewTable("E9 — intersection kernels",
		"|short|", "|long|", "result", "merge ns/op", "gallop ns/op", "speedup")

	mk := func(n, stride int) []index.DocID {
		out := make([]index.DocID, n)
		v := index.DocID(0)
		for i := range out {
			v += index.DocID(1 + rng.Intn(stride))
			out[i] = v
		}
		return out
	}
	for _, shape := range []struct{ short, long int }{
		{100, 100},
		{100, 10_000},
		{100, 100_000},
		{1000, 100_000},
		{10_000, 100_000},
	} {
		// Both lists span the same DocID range (as real postings for
		// co-occurring terms do), so the skew ratio is the variable.
		long := mk(shape.long, 2)
		span := int(long[len(long)-1])
		short := mk(shape.short, span/shape.short)
		lists := [][]index.DocID{short, long}

		mergeNS := timePerOp(func() { index.IntersectMerge(lists) })
		gallopNS := timePerOp(func() { index.IntersectGallop(lists) })
		result := len(index.IntersectMerge(lists))
		speedup := 0.0
		if gallopNS > 0 {
			speedup = float64(mergeNS) / float64(gallopNS)
		}
		t.AddRow(shape.short, shape.long, result, mergeNS, gallopNS, speedup)
	}
	return []*metrics.Table{t}
}

// timePerOp measures one function's wall time with enough repetitions to
// be stable at table granularity.
func timePerOp(f func()) int64 {
	const minRounds = 5
	//detlint:ignore wallclock host-CPU microbenchmark; measures real compute, no simulated state depends on it
	start := time.Now()
	rounds := 0
	//detlint:ignore wallclock host-CPU microbenchmark; measures real compute, no simulated state depends on it
	for time.Since(start) < 2*time.Millisecond || rounds < minRounds {
		f()
		rounds++
	}
	//detlint:ignore wallclock host-CPU microbenchmark; measures real compute, no simulated state depends on it
	return time.Since(start).Nanoseconds() / int64(rounds)
}

// runE10: a skewed-popularity corpus; after rank + popularity payouts +
// an ad click stream, is honey correlated with popularity and is the
// distribution meaningfully concentrated (rewarding popularity) without
// starving the tail?
func runE10(seed uint64) []*metrics.Table {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.NumPeers = 16
	cfg.NumBees = 4
	cfg.Contract.PopularityThreshold = 0.005
	c := core.NewCluster(cfg)

	const publishers = 10
	const docs = 60
	owners := make([]*chain.Account, publishers)
	for i := range owners {
		owners[i] = c.NewAccount(fmt.Sprintf("creator-%02d", i), 10_000)
	}
	c.Seal()

	// Preferential-attachment links: earlier pages get more in-links.
	rng := xrand.New(seed)
	weights := make([]float64, 0, docs)
	for i := 0; i < docs; i++ {
		var links []string
		for j := 0; j < 3 && i > 0; j++ {
			links = append(links, urlOf(rng.Weighted(weights)))
		}
		owner := owners[i%publishers]
		if _, err := c.Publish(owner, c.Peers[i%len(c.Peers)], urlOf(i),
			fmt.Sprintf("article %04d with body text about subject %d", i, i%7), links); err != nil {
			panic(err)
		}
		weights = append(weights, 1)
		for _, l := range links {
			var idx int
			fmt.Sscanf(l, "dweb://site/%04d", &idx)
			weights[idx] += 2
		}
		if i%20 == 19 {
			c.Seal()
			c.RunUntilIdle(4)
		}
	}
	c.Seal()
	c.RunUntilIdle(8)

	epoch := c.StartRankEpoch(4)
	c.RunUntilIdle(8)
	c.PayPopularity(epoch)

	// Advertiser + click stream on top-ranked pages.
	adv := c.NewAccount("advertiser", 1_000_000)
	clicker := c.NewAccount("clicker", 1_000)
	c.Seal()
	c.SubmitCall(adv, contracts.MethodRegisterAd, contracts.RegisterAdParams{
		Keywords: []string{"article"}, BidPerClick: 20,
	}, 10_000)
	c.Seal()
	fe := core.NewFrontend(c, c.Peers[1])
	top := fe.TopRankedPages(docs)
	ranks := c.QB.PageRanks()
	zipf := xrand.NewZipf(rng.Split(), 1.1, len(top))
	for i := 0; i < 100; i++ {
		url := top[zipf.Next()]
		c.SubmitCall(clicker, contracts.MethodClick, contracts.ClickParams{AdID: 1, URL: url}, 0)
		if i%10 == 9 {
			c.Seal()
		}
	}
	c.Seal()

	// Honey earned per page owner vs total rank of their pages.
	honey := make([]float64, publishers)
	pop := make([]float64, publishers)
	for i, o := range owners {
		honey[i] = float64(c.Chain.State().Balance(o.Address())) - 10_000
	}
	for i := 0; i < docs; i++ {
		pop[i%publishers] += ranks[urlOf(i)]
	}

	t := metrics.NewTable("E10 — incentive fairness", "metric", "value")
	t.AddRow("creators", publishers)
	t.AddRow("pages", docs)
	t.AddRow("honey Gini across creators", metrics.Gini(honey))
	t.AddRow("Spearman(honey, popularity)", metrics.Spearman(honey, pop))
	t.AddRow("Pearson(honey, popularity)", metrics.Pearson(honey, pop))
	st := c.Chain.State()
	t.AddRow("honey conservation", boolStr(st.SumBalances() == st.Supply()))

	// Threshold sweep: how many pages would qualify at each threshold.
	t2 := metrics.NewTable("E10b — popularity threshold sweep",
		"threshold", "pages above", "fraction")
	for _, thr := range []float64{0.001, 0.005, 0.01, 0.02, 0.05} {
		above := 0
		for _, r := range ranks {
			if r >= thr {
				above++
			}
		}
		t2.AddRow(thr, above, float64(above)/float64(len(ranks)))
	}
	return []*metrics.Table{t, t2}
}

// runE11: the collusion sweep (fraction × quorum), using the attack
// orchestrator, plus the YaCy-style unverified baseline for contrast.
func runE11(seed uint64) []*metrics.Table {
	t := metrics.NewTable("E11 — collusion attack vs quorum",
		"colluders/5 bees", "quorum", "tasks", "corrupted", "corruption %", "colluder slashes", "stake burned")
	for _, quorum := range []int{1, 3, 5} {
		for _, colluders := range []int{0, 1, 2, 3} {
			r := attack.RunCollusion(seed, 5, colluders, quorum, 12)
			t.AddRow(colluders, quorum, r.Tasks, r.Corrupted,
				100*r.CorruptionRate(), r.ColluderSlash, r.ColluderStake)
		}
	}

	// Baseline: the unverified P2P keyword index the paper contrasts
	// with ("existing P2P search engines … without an incentive scheme
	// or a security incentive"). One attacker, zero stake, poisons every
	// term it targets.
	t2 := metrics.NewTable("E11b — unverified P2P baseline (index poisoning)",
		"terms attacked", "poisoned", "attacker cost")
	{
		_, peers := buildStoreSwarm(seed, 16, 0)
		u := baselineUnverified()
		//detlint:ignore costdrop baseline index population; the table measures poisoning success, not cost
		u.Publish(peers[0].DHT(), "dweb://legit", "trusted reliable verified facts knowledge")
		attacked, poisoned := 0, 0
		for _, term := range []string{"trusted", "reliable", "verified", "facts", "knowledge"} {
			attacked++
			//detlint:ignore costdrop attacker traffic; the table's cost column is stake (zero), not messages
			if _, err := u.Poison(peers[7].DHT(), term, "dweb://spam"); err != nil {
				continue
			}
			//detlint:ignore costdrop poisoning probe; only the returned URLs feed the table
			urls, _, _ := u.Search(peers[3].DHT(), term)
			for _, url := range urls {
				if url == "dweb://spam" {
					poisoned++
					break
				}
			}
		}
		t2.AddRow(attacked, poisoned, 0)
	}

	// Sybil resistance: under stake-weighted assignment, splitting one
	// attacker stake across many identities captures the same seat share.
	t3 := metrics.NewTable("E11c — Sybil seat capture under stake weighting",
		"identities", "stake each", "total stake", "seat share %")
	for _, shape := range []struct {
		ids   int
		stake uint64
	}{{1, 5000}, {5, 1000}, {10, 500}} {
		share := sybilSeatShare(seed, shape.ids, shape.stake)
		t3.AddRow(shape.ids, shape.stake, uint64(shape.ids)*shape.stake, 100*share)
	}
	return []*metrics.Table{t, t2, t3}
}

// sybilSeatShare registers one honest 5000-stake worker plus `ids` Sybil
// workers of `stake` each on a bare chain with stake-weighted quorum 1,
// publishes 40 tasks, and returns the fraction of seats the Sybils
// captured. Seat share tracks total stake, not identity count.
func sybilSeatShare(seed uint64, ids int, stake uint64) float64 {
	clock := vclock.New(time.Time{})
	genesis := make(map[chain.Address]uint64)
	publisher := chain.NewNamedAccount(seed, "sybil-publisher")
	honest := chain.NewNamedAccount(seed, "sybil-honest")
	genesis[publisher.Address()] = 1_000_000
	genesis[honest.Address()] = 1_000_000
	sybilAccts := make([]*chain.Account, ids)
	for i := range sybilAccts {
		sybilAccts[i] = chain.NewNamedAccount(seed, fmt.Sprintf("sybil-%02d", i))
		genesis[sybilAccts[i].Address()] = 1_000_000
	}
	ch := chain.New(clock, genesis)
	ccfg := contracts.DefaultConfig()
	ccfg.Quorum = 1
	ccfg.StakeWeightedQuorum = true
	qb := contracts.New(ccfg)
	ch.RegisterContract(qb, true)

	nonces := map[chain.Address]uint64{}
	call := func(from *chain.Account, method string, params any, value uint64) {
		n := nonces[from.Address()]
		nonces[from.Address()]++
		if err := ch.Submit(chain.NewCall(from, n, contracts.ContractName, method, params, value)); err != nil {
			panic(err)
		}
	}
	call(honest, contracts.MethodRegisterWorker, nil, 5000)
	for _, s := range sybilAccts {
		call(s, contracts.MethodRegisterWorker, nil, stake)
	}
	clock.Advance(time.Second)
	ch.Seal()

	sybilAddrs := map[chain.Address]bool{}
	for _, s := range sybilAccts {
		sybilAddrs[s.Address()] = true
	}
	const tasks = 40
	captured := 0
	for i := 0; i < tasks; i++ {
		url := fmt.Sprintf("dweb://sybil/%d", i)
		call(publisher, contracts.MethodPublish, contracts.PublishParams{URL: url, CID: "c"}, 0)
		clock.Advance(time.Second)
		ch.Seal()
		task, ok := qb.TaskInfo(fmt.Sprintf("idx:%s:1", url))
		if ok && len(task.Assignees) == 1 && sybilAddrs[task.Assignees[0]] {
			captured++
		}
	}
	return float64(captured) / tasks
}

// runE12: scraper economics with the defense off and on.
func baselineUnverified() *baseline.UnverifiedP2P {
	return baseline.NewUnverifiedP2P(8)
}

func runE12(seed uint64) []*metrics.Table {
	t := metrics.NewTable("E12 — scraper-site attack",
		"defense", "original honey", "scraper honey", "original rank", "mirror rank", "false demotions")
	for _, defense := range []bool{false, true} {
		r := attack.RunScraper(seed, defense)
		name := "off"
		if defense {
			name = "MinHash dedup"
		}
		t.AddRow(name, r.OriginalHoney, r.ScraperHoney, r.OriginalRank, r.ScraperRank, r.FalseDemotions)
	}
	return []*metrics.Table{t}
}

// runE13: a full ad campaign: escrow, clicks, exhaustion, and the
// creator/worker split, with exact conservation accounting.
func runE13(seed uint64) []*metrics.Table {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.NumPeers = 10
	cfg.NumBees = 4
	c := core.NewCluster(cfg)
	creator := c.NewAccount("creator", 1_000)
	adv := c.NewAccount("advertiser", 100_000)
	user := c.NewAccount("user", 100)
	c.Seal()
	if _, err := c.Publish(creator, c.Peers[0], "dweb://content", "premium searchable content about products", nil); err != nil {
		panic(err)
	}
	c.Seal()
	c.RunUntilIdle(5)

	const bid = 100
	const budget = 1000
	c.SubmitCall(adv, contracts.MethodRegisterAd, contracts.RegisterAdParams{
		Keywords: []string{"product"}, BidPerClick: bid,
	}, budget)
	c.Seal()

	creatorBefore := c.Chain.State().Balance(creator.Address())
	beesBefore := uint64(0)
	for _, b := range c.Bees {
		beesBefore += c.Chain.State().Balance(b.Account.Address())
	}

	clicks, failed := 0, 0
	for i := 0; i < 15; i++ { // more clicks than the budget affords
		tx := c.SubmitCall(user, contracts.MethodClick, contracts.ClickParams{AdID: 1, URL: "dweb://content"}, 0)
		c.Seal()
		if r := c.Chain.Receipt(tx.Hash()); r != nil && r.OK {
			clicks++
		} else {
			failed++
		}
	}

	creatorEarned := c.Chain.State().Balance(creator.Address()) - creatorBefore
	beesAfter := uint64(0)
	for _, b := range c.Bees {
		beesAfter += c.Chain.State().Balance(b.Account.Address())
	}
	ad, _ := c.QB.AdInfo(1)
	breakdown := c.QB.Escrow()
	st := c.Chain.State()

	t := metrics.NewTable("E13 — pay-per-click economics", "metric", "value")
	t.AddRow("bid per click", bid)
	t.AddRow("escrowed budget", budget)
	t.AddRow("paid clicks", clicks)
	t.AddRow("rejected clicks (budget exhausted)", failed)
	t.AddRow("creator revenue", creatorEarned)
	t.AddRow("worker pool revenue", beesAfter-beesBefore)
	t.AddRow("remaining ad budget", ad.Budget)
	t.AddRow("escrow dust", breakdown.Dust)
	if clicks > 0 {
		t.AddRow("creator share per click", creatorEarned/uint64(clicks))
	}
	t.AddRow("honey conservation", boolStr(st.SumBalances() == st.Supply()))
	return []*metrics.Table{t}
}
