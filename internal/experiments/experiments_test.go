package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("registered %d experiments, want 18", len(all))
	}
	// E1..E14 consecutively, then E16..E19 (E15 is reserved).
	for i, e := range all {
		var want string
		switch {
		case i < 14:
			want = "E" + itoa(i+1)
		default:
			want = "E" + itoa(i+2)
		}
		if e.ID != want {
			t.Fatalf("order: got %s at %d, want %s", e.ID, i, want)
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E5"); !ok {
		t.Fatal("E5 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("E99 should not exist")
	}
}

// Each experiment must run and produce at least one non-empty table.
// Heavier experiments are exercised here with the default seed; this is
// the integration test for the whole reproduction harness.
func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are heavyweight; skipped with -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(1)
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, table := range tables {
				if table.Rows() == 0 {
					t.Fatalf("%s produced empty table %q", e.ID, table.Title)
				}
				if !strings.Contains(table.String(), "\n") {
					t.Fatalf("%s table %q renders empty", e.ID, table.Title)
				}
			}
		})
	}
}

// Key shape assertions on experiment outputs: these encode the expected
// qualitative results (who wins) that EXPERIMENTS.md reports.
func TestE5CrawlSlowerThanPublish(t *testing.T) {
	if testing.Short() {
		t.Skip("heavyweight")
	}
	e, _ := ByID("E5")
	tables := e.Run(1)
	tb := tables[0]
	// Row 0: QueenBee; rows 1..3: crawlers. Compare medians textually is
	// fragile; re-run is cheap enough — instead assert row count.
	if tb.Rows() != 4 {
		t.Fatalf("E5 rows = %d, want 4", tb.Rows())
	}
	if !strings.Contains(tb.Cell(0, 0), "QueenBee") {
		t.Fatalf("row 0 = %q", tb.Cell(0, 0))
	}
}

// TestE17PipelinedBeatsSerial encodes the ISSUE 7 acceptance shape: on
// a ≥2000-page crawl, pipelined rounds beat serial rounds on simulated
// makespan, and the speedup column reports > 1.
func TestE17PipelinedBeatsSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("heavyweight")
	}
	e, _ := ByID("E17")
	tb := e.Run(1)[0]
	if tb.Rows() != 2 || tb.Cell(0, 0) != "serial" || tb.Cell(1, 0) != "pipelined" {
		t.Fatalf("headline table shape: %s", tb)
	}
	serial, err1 := time.ParseDuration(tb.Cell(0, 3))
	pipelined, err2 := time.ParseDuration(tb.Cell(1, 3))
	if err1 != nil || err2 != nil {
		t.Fatalf("bad makespan cells %q %q: %v %v", tb.Cell(0, 3), tb.Cell(1, 3), err1, err2)
	}
	if pipelined >= serial {
		t.Fatalf("pipelined makespan %v not better than serial %v", pipelined, serial)
	}
	speedup, err := strconv.ParseFloat(tb.Cell(1, 7), 64)
	if err != nil || speedup <= 1 {
		t.Fatalf("speedup cell %q (%v), want > 1", tb.Cell(1, 7), err)
	}
}

// TestE19WritePathScaling encodes the ISSUE 10 acceptance shape: as the
// run length quadruples, the tiered policy's steady-state bytes per
// round stay flat (within the documented ~2× log-factor) while the
// monolithic policy's grow at least 2×; the tiered run's cumulative
// write amplification beats the monolithic run's at every scale. On the
// rank side, the delta epoch must cost strictly less than the full
// recompute at every graph size while keeping the top-10 exact.
func TestE19WritePathScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("heavyweight")
	}
	e, _ := ByID("E19")
	tables := e.Run(1)
	if len(tables) != 2 {
		t.Fatalf("E19 produced %d tables, want 2", len(tables))
	}

	comp := tables[0]
	if comp.Rows() != 3 {
		t.Fatalf("compaction table rows = %d, want 3", comp.Rows())
	}
	cell := func(tb interface{ Cell(int, int) string }, r, c int) float64 {
		v, err := strconv.ParseFloat(tb.Cell(r, c), 64)
		if err != nil {
			t.Fatalf("cell (%d,%d) = %q: %v", r, c, tb.Cell(r, c), err)
		}
		return v
	}
	monoFirst, monoLast := cell(comp, 0, 1), cell(comp, 2, 1)
	tieredFirst, tieredLast := cell(comp, 0, 2), cell(comp, 2, 2)
	if monoLast < 2*monoFirst {
		t.Fatalf("monolithic bytes/round grew only %.0f -> %.0f over 4x rounds; expected ~linear growth",
			monoFirst, monoLast)
	}
	if tieredLast > 2.5*tieredFirst {
		t.Fatalf("tiered bytes/round grew %.0f -> %.0f over 4x rounds; expected flat (±2x)",
			tieredFirst, tieredLast)
	}
	for r := 0; r < comp.Rows(); r++ {
		if monoAmp, tieredAmp := cell(comp, r, 3), cell(comp, r, 4); tieredAmp >= monoAmp {
			t.Fatalf("row %d: tiered amplification %.2f not below monolithic %.2f", r, tieredAmp, monoAmp)
		}
	}

	rk := tables[1]
	if rk.Rows() != 3 {
		t.Fatalf("rank table rows = %d, want 3", rk.Rows())
	}
	for r := 0; r < rk.Rows(); r++ {
		full, delta := cell(rk, r, 3), cell(rk, r, 4)
		if delta >= full {
			t.Fatalf("row %d: delta cost %.0f not below full cost %.0f", r, delta, full)
		}
		if rk.Cell(r, 7) != "true" {
			t.Fatalf("row %d: delta epoch broke the top-10 ordering", r)
		}
	}
}

func TestE11ZeroColludersZeroCorruption(t *testing.T) {
	if testing.Short() {
		t.Skip("heavyweight")
	}
	e, _ := ByID("E11")
	tb := e.Run(1)[0]
	for i := 0; i < tb.Rows(); i++ {
		if tb.Cell(i, 0) == "0" && tb.Cell(i, 3) != "0" {
			t.Fatalf("zero colluders corrupted tasks: row %d", i)
		}
	}
}

// TestE18ResultsIdentical encodes the E18 acceptance shape: block-max
// WAND returns exactly the same result lists as exhaustive scoring
// while decoding no more postings than the exhaustive path does.
func TestE18ResultsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("heavyweight")
	}
	wand, exhaustive := e18Run(1, 48)
	if !wand.identical || !exhaustive.identical {
		t.Fatalf("WAND results diverged from exhaustive: wand=%+v exhaustive=%+v", wand, exhaustive)
	}
	if wand.scanned > exhaustive.scanned {
		t.Fatalf("WAND scanned more postings than exhaustive: %.1f > %.1f", wand.scanned, exhaustive.scanned)
	}
	if exhaustive.skipped != 0 || exhaustive.docsSkip != 0 {
		t.Fatalf("exhaustive path reported skips: %+v", exhaustive)
	}
}
