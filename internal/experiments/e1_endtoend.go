package experiments

import (
	"fmt"

	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/metrics"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Figure 1 end-to-end: publish → contract → bees → frontend → ads",
		Claim: "the QueenBee architecture functions end-to-end as drawn in Figure 1",
		Run:   runE1,
	})
}

// buildWorkloadCluster publishes a corpus into a fresh cluster and drives
// the bees until the index is complete.
func buildWorkloadCluster(seed uint64, peers, bees, docs int) (*core.Cluster, *corpus.Corpus) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.NumPeers = peers
	cfg.NumBees = bees
	c := core.NewCluster(cfg)
	pub := c.NewAccount("publisher", 1_000_000)
	c.Seal()

	ccfg := corpus.DefaultConfig()
	ccfg.Seed = seed
	ccfg.NumDocs = docs
	corp := corpus.Generate(ccfg)
	for i, d := range corp.Docs {
		if _, err := c.Publish(pub, c.Peers[i%len(c.Peers)], d.URL, d.Text, d.Links); err != nil {
			panic(err)
		}
		// Seal in batches so commit deadlines stay satisfiable.
		if i%50 == 49 {
			c.Seal()
			c.RunUntilIdle(4)
		}
	}
	c.Seal()
	c.RunUntilIdle(8)
	return c, corp
}

func runE1(seed uint64) []*metrics.Table {
	const (
		peers = 24
		bees  = 6
		docs  = 120
	)
	c, corp := buildWorkloadCluster(seed, peers, bees, docs)

	// Advertiser joins the market.
	adv := c.NewAccount("advertiser", 100_000)
	c.Seal()
	c.SubmitCall(adv, contracts.MethodRegisterAd, contracts.RegisterAdParams{
		Keywords: []string{corp.Vocab(0), corp.Vocab(1)}, BidPerClick: 10,
	}, 1000)
	c.Seal()

	// Rank epoch.
	epoch := c.StartRankEpoch(4)
	c.RunUntilIdle(8)
	re, _ := c.QB.RankEpochInfo(epoch)

	// Queries through the frontend.
	fe := core.NewFrontend(c, c.Peers[1])
	queries := corp.Queries(seed, 60, 2)
	var latency metrics.Histogram
	var msgs metrics.Histogram
	hits, adImpressions := 0, 0
	for _, q := range queries {
		resp, err := fe.Search(q.Text, 10)
		if err != nil {
			continue
		}
		latency.AddDuration(resp.Cost.Latency)
		msgs.Add(float64(resp.Cost.Msgs))
		if len(resp.Results) > 0 {
			hits++
		}
		adImpressions += len(resp.Ads)
	}

	open, finalized, failed := c.QB.TaskCounts()
	st := c.Chain.State()

	t := metrics.NewTable("E1 — Figure 1 end-to-end", "metric", "value")
	t.AddRow("peers", peers)
	t.AddRow("worker bees", bees)
	t.AddRow("pages published", c.QB.PageCount())
	t.AddRow("index tasks finalized", finalized)
	t.AddRow("index tasks failed", failed)
	t.AddRow("index tasks open", open)
	t.AddRow("rank epoch finalized", boolStr(re.Done))
	t.AddRow("queries issued", len(queries))
	t.AddRow("queries with hits", hits)
	t.AddRow("hit rate", float64(hits)/float64(len(queries)))
	t.AddRow("query p50 latency (ms)", latency.Median()*1000)
	t.AddRow("query p95 latency (ms)", latency.Quantile(0.95)*1000)
	t.AddRow("query mean msgs", msgs.Mean())
	t.AddRow("ad impressions", adImpressions)
	t.AddRow("chain height", c.Chain.Height())
	t.AddRow("honey conservation", boolStr(st.SumBalances() == st.Supply()))
	t.AddRow("chain integrity", boolStr(c.Chain.VerifyIntegrity() == nil))
	return []*metrics.Table{t}
}

func boolStr(b bool) string {
	if b {
		return "ok"
	}
	return "VIOLATED"
}

// urlOf is a tiny helper used by several experiments.
func urlOf(i int) string { return fmt.Sprintf("dweb://site/%04d", i) }
