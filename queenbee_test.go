package queenbee

import (
	"strings"
	"testing"
	"time"
)

func newEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	base := []Option{WithSeed(7), WithPeers(10), WithBees(3)}
	return New(append(base, opts...)...)
}

func TestEngineQuickstartFlow(t *testing.T) {
	e := newEngine(t)
	alice := e.NewAccount("alice", 1000)
	if err := e.Publish(alice, "dweb://hive", "worker bees build honeycomb cells", nil); err != nil {
		t.Fatal(err)
	}
	e.RunUntilIdle()
	results, _, err := e.Search("honeycomb cells", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].URL != "dweb://hive" {
		t.Fatalf("results = %+v", results)
	}
	content, err := e.Fetch(results[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(content, "honeycomb") {
		t.Fatalf("content = %q", content)
	}
}

func TestEngineOptionsApply(t *testing.T) {
	e := New(WithSeed(3), WithPeers(6), WithBees(2), WithShards(4),
		WithQuorum(2), WithRankWeight(2.5), WithBlockInterval(time.Second),
		WithReplication(4), WithPopularityThreshold(0.5))
	cfg := e.Cluster.Config()
	if cfg.NumPeers != 6 || cfg.NumBees != 2 || cfg.NumShards != 4 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Contract.Quorum != 2 || cfg.RankWeight != 2.5 || cfg.DHT.K != 4 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Contract.PopularityThreshold != 0.5 {
		t.Fatalf("threshold = %v", cfg.Contract.PopularityThreshold)
	}
}

func TestEngineRanksAndRewards(t *testing.T) {
	e := newEngine(t, WithPopularityThreshold(0.2))
	alice := e.NewAccount("alice", 1000)
	e.Publish(alice, "dweb://hub", "the page everyone cites", nil)
	for _, u := range []string{"dweb://x", "dweb://y", "dweb://z"} {
		e.Publish(alice, u, "citation page "+u, []string{"dweb://hub"})
	}
	e.RunUntilIdle()
	epoch := e.ComputeRanks(2)
	if e.PageRank("dweb://hub") <= e.PageRank("dweb://x") {
		t.Fatal("hub should outrank spokes")
	}
	before := e.Balance(alice)
	if err := e.PayPopularityRewards(epoch); err != nil {
		t.Fatal(err)
	}
	if e.Balance(alice) <= before {
		t.Fatal("popularity reward not paid")
	}
}

func TestEngineAdFlow(t *testing.T) {
	e := newEngine(t)
	alice := e.NewAccount("alice", 1000)
	adv := e.NewAccount("brand", 5000)
	user := e.NewAccount("user", 100)
	e.Publish(alice, "dweb://recipes", "sourdough bread baking recipes", nil)
	e.RunUntilIdle()

	adID, err := e.RegisterAd(adv, []string{"bread", "baking"}, 10, 200)
	if err != nil {
		t.Fatal(err)
	}
	_, ads, err := e.Search("bread baking", 10)
	if err != nil || len(ads) != 1 || ads[0].ID != adID {
		t.Fatalf("ads=%v err=%v", ads, err)
	}
	creatorBefore := e.Balance(alice)
	if err := e.Click(user, adID, "dweb://recipes"); err != nil {
		t.Fatal(err)
	}
	if e.Balance(alice) <= creatorBefore {
		t.Fatal("creator not paid for click")
	}
}

func TestEngineStats(t *testing.T) {
	e := newEngine(t)
	alice := e.NewAccount("alice", 1000)
	e.Publish(alice, "dweb://one", "first page text", nil)
	e.RunUntilIdle()
	s := e.Stats()
	if s.Pages != 1 || s.TasksFinalized != 1 || s.TasksOpen != 0 || s.Workers != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Height == 0 || s.HoneySupply == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []Result {
		e := New(WithSeed(42), WithPeers(8), WithBees(3))
		a := e.NewAccount("a", 1000)
		e.Publish(a, "dweb://d1", "alpha beta gamma delta", nil)
		e.Publish(a, "dweb://d2", "alpha beta epsilon zeta", nil)
		e.RunUntilIdle()
		res, _, _ := e.Search("alpha beta", 10)
		return res
	}
	x, y := run(), run()
	if len(x) != len(y) || len(x) != 2 {
		t.Fatalf("lens: %d vs %d", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("nondeterministic results: %+v vs %+v", x[i], y[i])
		}
	}
}

func TestEngineErrors(t *testing.T) {
	e := newEngine(t)
	alice := e.NewAccount("alice", 1000)
	user := e.NewAccount("user", 10)
	if _, _, err := e.Search("the of and", 10); err == nil {
		t.Fatal("stopword-only query should error")
	}
	if err := e.Click(user, 999, "dweb://nope"); err == nil {
		t.Fatal("click on unknown ad should error")
	}
	if _, err := e.Fetch(Result{URL: "dweb://ghost"}); err == nil {
		t.Fatal("fetch of unregistered page should error")
	}
	_ = alice
}
