package queenbee

import (
	"strings"
	"testing"
)

func modesEngine(t *testing.T) (*Engine, *Account) {
	t.Helper()
	e := New(WithSeed(21), WithPeers(10), WithBees(3))
	alice := e.NewAccount("alice", 1000)
	docs := map[string]string{
		"dweb://m1": "solar panels convert sunlight into electricity",
		"dweb://m2": "wind turbines convert moving air into electricity",
		"dweb://m3": "sunlight exposure affects sleep patterns",
	}
	for url, text := range docs {
		if err := e.Publish(alice, url, text, nil); err != nil {
			t.Fatal(err)
		}
	}
	e.RunUntilIdle()
	return e, alice
}

func TestFacadeSearchAny(t *testing.T) {
	e, _ := modesEngine(t)
	results, _, err := e.SearchAny("turbines panels", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("OR results = %+v", results)
	}
}

func TestFacadeSearchPhrase(t *testing.T) {
	e, _ := modesEngine(t)
	// "convert sunlight" is adjacent only in m1; m3 has "sunlight" in
	// another context.
	results, _, err := e.SearchPhrase("convert sunlight", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].URL != "dweb://m1" {
		t.Fatalf("phrase results = %+v", results)
	}
	// Non-adjacent order fails.
	results, _, err = e.SearchPhrase("sunlight convert", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("reversed phrase should not match: %+v", results)
	}
}

func TestFacadeSearchSnippets(t *testing.T) {
	e, _ := modesEngine(t)
	results, _, err := e.SearchSnippets("turbines", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %+v", results)
	}
	if !strings.Contains(results[0].Snippet, "«") {
		t.Fatalf("snippet missing match marker: %q", results[0].Snippet)
	}
}

func TestFacadeAndVsOrSubset(t *testing.T) {
	e, _ := modesEngine(t)
	and, _, err := e.Search("convert electricity", 10)
	if err != nil {
		t.Fatal(err)
	}
	or, _, err := e.SearchAny("convert electricity", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(and) > len(or) {
		t.Fatalf("AND (%d) should never exceed OR (%d)", len(and), len(or))
	}
	orURLs := map[string]bool{}
	for _, r := range or {
		orURLs[r.URL] = true
	}
	for _, r := range and {
		if !orURLs[r.URL] {
			t.Fatalf("AND result %s missing from OR set", r.URL)
		}
	}
}

func TestFacadeSwarmingOption(t *testing.T) {
	e := New(WithSeed(31), WithPeers(8), WithBees(2), WithSwarming(true))
	if !e.Cluster.Config().Peer.Swarming {
		t.Fatal("WithSwarming not applied")
	}
	alice := e.NewAccount("alice", 1000)
	if err := e.Publish(alice, "dweb://sw", "swarming fetch still indexes fine", nil); err != nil {
		t.Fatal(err)
	}
	e.RunUntilIdle()
	results, _, err := e.Search("swarming", 5)
	if err != nil || len(results) != 1 {
		t.Fatalf("results=%v err=%v", results, err)
	}
}

func TestFacadeStakeWeightedOption(t *testing.T) {
	e := New(WithSeed(32), WithPeers(8), WithBees(3), WithStakeWeightedQuorum(true))
	if !e.Cluster.Config().Contract.StakeWeightedQuorum {
		t.Fatal("WithStakeWeightedQuorum not applied")
	}
	alice := e.NewAccount("alice", 1000)
	if err := e.Publish(alice, "dweb://sq", "stake weighted quorum works", nil); err != nil {
		t.Fatal(err)
	}
	e.RunUntilIdle()
	s := e.Stats()
	if s.TasksFinalized != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
