package queenbee

import (
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
)

// Option configures an Engine at construction.
type Option func(*core.Config)

// WithSeed sets the deterministic simulation seed.
func WithSeed(seed uint64) Option {
	return func(c *core.Config) { c.Seed = seed }
}

// WithPeers sets the number of plain DWeb devices in the swarm.
func WithPeers(n int) Option {
	return func(c *core.Config) { c.NumPeers = n }
}

// WithBees sets the number of worker bees.
func WithBees(n int) Option {
	return func(c *core.Config) { c.NumBees = n }
}

// WithShards sets the term-shard count of the distributed index.
func WithShards(n int) Option {
	return func(c *core.Config) { c.NumShards = n }
}

// WithQuorum sets how many bees verify each index/rank task.
func WithQuorum(q int) Option {
	return func(c *core.Config) { c.Contract.Quorum = q }
}

// WithRankWeight controls how strongly page rank blends into scores.
func WithRankWeight(w float64) Option {
	return func(c *core.Config) { c.RankWeight = w }
}

// WithBlockInterval sets the simulated time between sealed blocks.
func WithBlockInterval(d time.Duration) Option {
	return func(c *core.Config) { c.BlockInterval = d }
}

// WithReplication sets the DHT replication factor (bucket size K).
func WithReplication(k int) Option {
	return func(c *core.Config) { c.DHT.K = k }
}

// WithPopularityThreshold sets the page-rank threshold above which
// content providers earn popularity honey.
func WithPopularityThreshold(t float64) Option {
	return func(c *core.Config) { c.Contract.PopularityThreshold = t }
}

// WithSwarming stripes large-content downloads across all providers in
// parallel (BitTorrent-style), instead of pulling from one peer.
func WithSwarming(on bool) Option {
	return func(c *core.Config) { c.Peer.Swarming = on }
}

// WithStakeWeightedQuorum assigns task quorum seats with probability
// proportional to worker stake (Sybil-resistant seating).
func WithStakeWeightedQuorum(on bool) Option {
	return func(c *core.Config) { c.Contract.StakeWeightedQuorum = on }
}

// WithCacheBudget bounds the frontend's two query caches in bytes: the
// per-digest segment cache and the per-shard merged-chain cache. Both are
// LRU-evicted, so a long-lived serving deployment stays within budget
// under publish churn. Zero (or negative) selects the defaults.
func WithCacheBudget(segBytes, chainBytes int64) Option {
	return func(c *core.Config) {
		c.SegCacheBytes = segBytes
		c.ChainCacheBytes = chainBytes
	}
}

// WithParallelRounds controls whether the write-side round engine fans
// its work out across goroutines: bee commit compute as one wave per
// round, then shard materialization as one wave per touched shard. On
// by default. DHT state is byte-identical either way (the round engine
// orders every write deterministically), so turning it off only trades
// wall-clock for a single-threaded drive — useful for golden-cost
// comparisons and the determinism soak. Shared-stream mode
// (WithSharedNetStream) forces rounds sequential regardless.
func WithParallelRounds(on bool) Option {
	return func(c *core.Config) { c.ParallelRounds = on }
}

// WithFrontendPool sets the serving tier's size: n stateless frontends,
// each attached to its own peer with its own byte-budgeted caches,
// behind a deterministic least-loaded balancer (fewest in-flight, then
// least accumulated simulated serving time, then round-robin). Results
// are frontend-independent, so the pool size never changes responses —
// it divides the serving tier's simulated makespan, which
// Engine.PoolStats exposes per frontend. Non-positive selects 1.
func WithFrontendPool(n int) Option {
	return func(c *core.Config) { c.PoolSize = n }
}

// WithHedgedReads duplicates each query's slowest shard fetch on a
// second pool frontend: the first reply wins the latency, both replies
// pay their bytes and messages, and a fetch that failed on the primary
// frontend is rescued when the hedge succeeds. Requires
// WithFrontendPool(n ≥ 2); a size-1 pool runs unhedged.
func WithHedgedReads(on bool) Option {
	return func(c *core.Config) { c.HedgedReads = on }
}

// WithDefaultDeadline bounds the simulated latency of every query that
// carries no deadline of its own: once the accumulated simulated cost
// reaches d at a checkpoint, the remaining waves are abandoned and the
// query fails with ErrDeadlineExceeded plus a partial Explain trace.
// Deterministic per seed. Zero means no bound.
func WithDefaultDeadline(d time.Duration) Option {
	return func(c *core.Config) { c.DefaultDeadline = d }
}

// WithFaultPlan installs a deterministic fault schedule: as the engine
// seals blocks, simulated time advances through the plan's events —
// crashes, recoveries, partitions, lossy-link episodes — firing each at
// its scripted offset. Victim sampling is seeded by the plan, so the
// same plan on the same deployment always kills the same nodes. Pair
// with WithMaintenance and WithDegradedReads to study self-healing;
// docs/robustness.md has the contract.
func WithFaultPlan(p *netsim.FaultPlan) Option {
	return func(c *core.Config) { c.FaultPlan = p }
}

// WithMaintenance runs one self-healing pass after every protocol
// round: shard pointers and index stats replicated below K are
// republished, segments below K are re-seeded from a surviving replica
// (hash-verified), and live peers re-announce their provider records.
// Engine.RepairStats reports what the loops have done. Off by default —
// a healthy deployment's maintenance traffic is pure probe cost.
func WithMaintenance(on bool) Option {
	return func(c *core.Config) { c.Maintenance = on }
}

// WithDegradedReads lets a query whose wave lost some — but not all —
// shards return the partial answer it could assemble, tagged with a
// typed Degraded warning (failed shards, completeness fraction, cause)
// instead of failing with ErrShardUnavailable. Off by default: the
// all-or-nothing contract stands unless the deployment opts in.
func WithDegradedReads(on bool) Option {
	return func(c *core.Config) { c.DegradedReads = on }
}

// WithExhaustiveScoring disables block-max early termination and scores
// every candidate document against every query term, exactly as the
// engine did before segment format v3. Results are byte-identical either
// way (the WAND executor is property-tested against this mode); the
// switch exists for baseline measurement — E18 compares the two — and as
// an escape hatch. Off by default.
func WithExhaustiveScoring(on bool) Option {
	return func(c *core.Config) { c.ExhaustiveScoring = on }
}

// WithMonolithicCompaction switches the write path back to the legacy
// compaction policy: once a shard's chain passes the threshold, the
// WHOLE chain is merged into one segment — every firing rewrites
// O(shard bytes), so steady ingest pays write amplification that grows
// with the shard. The default (off) is tiered compaction: size-tiered
// levels with at most one bucket merge per shard per round, keeping
// bytes rewritten per round O(round bytes · log(shard bytes)). Search
// results are byte-identical under either policy (property-tested); the
// switch exists as the E19 control and as an escape hatch.
func WithMonolithicCompaction(on bool) Option {
	return func(c *core.Config) { c.MonolithicCompaction = on }
}

// WithRankFullEvery sets the exactness escape hatch of delta page-rank
// epochs: every n-th epoch started by ComputeRanksDelta runs a full
// recompute instead of an incremental pass, bounding the drift the
// frozen-boundary approximation can accumulate. Zero selects the
// default cadence; negative disables full recomputes entirely (every
// epoch after the first runs delta). Engine.RankStatus reports the
// resulting staleness.
func WithRankFullEvery(n int) Option {
	return func(c *core.Config) { c.RankFullEvery = n }
}

// WithSharedNetStream switches the network simulation back to the legacy
// single RNG stream for jitter/drop draws. Simulated costs then match
// historical golden values exactly, but concurrent queries lose per-seed
// cost reproducibility (results stay deterministic either way), and the
// engine serializes shard waves to keep the stream stable.
func WithSharedNetStream(on bool) Option {
	return func(c *core.Config) { c.Net.SharedStream = on }
}
