package queenbee

import (
	"time"

	"repro/internal/core"
)

// Option configures an Engine at construction.
type Option func(*core.Config)

// WithSeed sets the deterministic simulation seed.
func WithSeed(seed uint64) Option {
	return func(c *core.Config) { c.Seed = seed }
}

// WithPeers sets the number of plain DWeb devices in the swarm.
func WithPeers(n int) Option {
	return func(c *core.Config) { c.NumPeers = n }
}

// WithBees sets the number of worker bees.
func WithBees(n int) Option {
	return func(c *core.Config) { c.NumBees = n }
}

// WithShards sets the term-shard count of the distributed index.
func WithShards(n int) Option {
	return func(c *core.Config) { c.NumShards = n }
}

// WithQuorum sets how many bees verify each index/rank task.
func WithQuorum(q int) Option {
	return func(c *core.Config) { c.Contract.Quorum = q }
}

// WithRankWeight controls how strongly page rank blends into scores.
func WithRankWeight(w float64) Option {
	return func(c *core.Config) { c.RankWeight = w }
}

// WithBlockInterval sets the simulated time between sealed blocks.
func WithBlockInterval(d time.Duration) Option {
	return func(c *core.Config) { c.BlockInterval = d }
}

// WithReplication sets the DHT replication factor (bucket size K).
func WithReplication(k int) Option {
	return func(c *core.Config) { c.DHT.K = k }
}

// WithPopularityThreshold sets the page-rank threshold above which
// content providers earn popularity honey.
func WithPopularityThreshold(t float64) Option {
	return func(c *core.Config) { c.Contract.PopularityThreshold = t }
}

// WithSwarming stripes large-content downloads across all providers in
// parallel (BitTorrent-style), instead of pulling from one peer.
func WithSwarming(on bool) Option {
	return func(c *core.Config) { c.Peer.Swarming = on }
}

// WithStakeWeightedQuorum assigns task quorum seats with probability
// proportional to worker stake (Sybil-resistant seating).
func WithStakeWeightedQuorum(on bool) Option {
	return func(c *core.Config) { c.Contract.StakeWeightedQuorum = on }
}
