package queenbee

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// energyEngine publishes a small corpus with controlled term overlaps
// under two URL "sites" for the boolean/filter tests.
func energyEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(WithSeed(77), WithPeers(10), WithBees(3))
	alice := e.NewAccount("alice", 5000)
	docs := map[string]string{
		"dweb://energy/solar": "solar panels convert sunlight into electricity",
		"dweb://energy/wind":  "wind turbines convert moving air into electricity",
		"dweb://food/nuts":    "walnut snacks give hikers quick electricity on the trail",
	}
	for url, text := range docs {
		if err := e.Publish(alice, url, text, nil); err != nil {
			t.Fatal(err)
		}
	}
	e.RunUntilIdle()
	return e
}

func urlSet(results []Result) map[string]bool {
	out := make(map[string]bool, len(results))
	for _, r := range results {
		out[r.URL] = true
	}
	return out
}

func TestQueryBuilderBoolean(t *testing.T) {
	e := energyEngine(t)
	cases := []struct {
		q    string
		want []string
	}{
		{"electricity", []string{"dweb://energy/solar", "dweb://energy/wind", "dweb://food/nuts"}},
		{"electricity -wind", []string{"dweb://energy/solar", "dweb://food/nuts"}},
		{"electricity site:dweb://energy/", []string{"dweb://energy/solar", "dweb://energy/wind"}},
		{"electricity -site:dweb://energy/", []string{"dweb://food/nuts"}},
		{"sunlight OR turbines", []string{"dweb://energy/solar", "dweb://energy/wind"}},
		{`"convert sunlight"`, []string{"dweb://energy/solar"}},
		{`electricity -"moving air"`, []string{"dweb://energy/solar", "dweb://food/nuts"}},
		{"(sunlight OR turbines) -wind", []string{"dweb://energy/solar"}},
	}
	for _, tc := range cases {
		resp, err := e.Query(tc.q).Run()
		if err != nil {
			t.Errorf("Query(%q): %v", tc.q, err)
			continue
		}
		got := urlSet(resp.Results)
		if len(got) != len(tc.want) {
			t.Errorf("Query(%q) = %v, want %v", tc.q, got, tc.want)
			continue
		}
		for _, u := range tc.want {
			if !got[u] {
				t.Errorf("Query(%q) = %v, missing %s", tc.q, got, u)
			}
		}
		if resp.Total != len(tc.want) {
			t.Errorf("Query(%q).Total = %d, want %d", tc.q, resp.Total, len(tc.want))
		}
	}
}

func TestQueryBuilderErrors(t *testing.T) {
	e := energyEngine(t)
	if _, err := e.Query("the of and").Run(); !errors.Is(err, ErrEmptyQuery) {
		t.Errorf("stopword-only: %v, want ErrEmptyQuery", err)
	}
	if _, err := e.Query("").Run(); !errors.Is(err, ErrEmptyQuery) {
		t.Errorf("empty: %v, want ErrEmptyQuery", err)
	}
	if _, err := e.Query("-electricity").Run(); !errors.Is(err, ErrBadSyntax) {
		t.Errorf("exclusion-only: %v, want ErrBadSyntax", err)
	}
	if _, err := e.Query(`"unterminated`).Run(); !errors.Is(err, ErrBadSyntax) {
		t.Errorf("unterminated quote: %v, want ErrBadSyntax", err)
	}
	if _, err := e.Query("site:dweb://energy/").Run(); !errors.Is(err, ErrBadSyntax) {
		t.Errorf("filter-only: %v, want ErrBadSyntax", err)
	}
}

func TestQueryBuilderFlatModes(t *testing.T) {
	e := energyEngine(t)
	// Flat Any mode treats OR as a stopword-stripped term list; results
	// must match the legacy SearchAny wrapper exactly.
	br, err := e.Query("sunlight turbines").Any().Run()
	if err != nil {
		t.Fatal(err)
	}
	legacy, _, err := e.SearchAny("sunlight turbines", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != len(legacy) {
		t.Fatalf("builder Any %d results vs wrapper %d", len(br.Results), len(legacy))
	}
	for i := range legacy {
		if br.Results[i] != legacy[i] {
			t.Fatalf("builder/wrapper diverge at %d: %+v vs %+v", i, br.Results[i], legacy[i])
		}
	}
	// Phrase mode through the builder.
	pr, err := e.Query("convert sunlight").Phrase().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Results) != 1 || pr.Results[0].URL != "dweb://energy/solar" {
		t.Fatalf("phrase results = %+v", pr.Results)
	}
	// Snippets through the builder.
	sr, err := e.Query("turbines").All().WithSnippets().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != 1 || !strings.Contains(sr.Results[0].Snippet, "«") {
		t.Fatalf("snippet results = %+v", sr.Results)
	}
}

func TestQueryBuilderExplain(t *testing.T) {
	e := energyEngine(t)
	resp, err := e.Query("electricity -wind site:dweb://").Explain().Run()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Explain == nil {
		t.Fatal("no explain trace")
	}
	if resp.Explain.Plan == nil || resp.Explain.Plan.Op != "and" {
		t.Fatalf("plan = %+v", resp.Explain.Plan)
	}
	if resp.Explain.Candidates != resp.Total {
		t.Fatalf("explain candidates %d != total %d", resp.Explain.Candidates, resp.Total)
	}
	if len(resp.Explain.Shards) == 0 {
		t.Fatal("no shard wave recorded")
	}
	if resp.Explain.TotalCost.Msgs < resp.Explain.LoadCost.Msgs {
		t.Fatalf("total msgs %d < load msgs %d",
			resp.Explain.TotalCost.Msgs, resp.Explain.LoadCost.Msgs)
	}
	if !strings.Contains(resp.Explain.String(), "and") {
		t.Fatalf("rendered plan: %q", resp.Explain.String())
	}
	// No trace unless asked.
	plain, err := e.Query("electricity").Run()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Explain != nil {
		t.Fatal("unrequested explain trace")
	}
}

// paginationEngine publishes seven pages sharing one term so pages of
// three tile unevenly (3+3+1).
func paginationEngine(t *testing.T, seed uint64) *Engine {
	t.Helper()
	e := New(WithSeed(seed), WithPeers(10), WithBees(3))
	alice := e.NewAccount("alice", 10_000)
	for i := 0; i < 7; i++ {
		url := fmt.Sprintf("dweb://page/%d", i)
		text := fmt.Sprintf("melon harvest report number%d with filler%d detail", i, i)
		if err := e.Publish(alice, url, text, nil); err != nil {
			t.Fatal(err)
		}
	}
	e.RunUntilIdle()
	return e
}

func runPages(t *testing.T, e *Engine) ([][]Result, []Result) {
	t.Helper()
	var pages [][]Result
	for n := 1; n <= 3; n++ {
		resp, err := e.Query("melon").Page(n, 3).Run()
		if err != nil {
			t.Fatal(err)
		}
		if resp.Total != 7 {
			t.Fatalf("page %d total = %d, want 7", n, resp.Total)
		}
		pages = append(pages, resp.Results)
	}
	full, err := e.Query("melon").Limit(100).Run()
	if err != nil {
		t.Fatal(err)
	}
	return pages, full.Results
}

func TestQueryBuilderPagination(t *testing.T) {
	e := paginationEngine(t, 13)
	pages, full := runPages(t, e)
	if len(full) != 7 {
		t.Fatalf("full result set = %d, want 7", len(full))
	}
	if len(pages[0]) != 3 || len(pages[1]) != 3 || len(pages[2]) != 1 {
		t.Fatalf("page sizes = %d,%d,%d", len(pages[0]), len(pages[1]), len(pages[2]))
	}
	// Pages are disjoint and union, in order, to the unpaginated set.
	var stitched []Result
	seen := map[string]bool{}
	for _, p := range pages {
		for _, r := range p {
			if seen[r.URL] {
				t.Fatalf("URL %s appears on two pages", r.URL)
			}
			seen[r.URL] = true
			stitched = append(stitched, r)
		}
	}
	if len(stitched) != len(full) {
		t.Fatalf("stitched %d vs full %d", len(stitched), len(full))
	}
	for i := range full {
		if stitched[i] != full[i] {
			t.Fatalf("rank %d: paged %+v vs full %+v", i, stitched[i], full[i])
		}
	}
	// Past-the-end pages are empty but still report the total.
	past, err := e.Query("melon").Page(4, 3).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(past.Results) != 0 || past.Total != 7 {
		t.Fatalf("past-end page: %d results, total %d", len(past.Results), past.Total)
	}
	// Non-positive size falls back to the current page size (default
	// 10) but the page number still applies — page 2 of 10 is past the
	// seven results, never a silent repeat of page 1.
	fallback, err := e.Query("melon").Page(2, 0).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(fallback.Results) != 0 || fallback.Total != 7 {
		t.Fatalf("Page(2,0): %d results, total %d", len(fallback.Results), fallback.Total)
	}
}

// TestQueryBuilderPaginationDeterminism rebuilds an identical engine
// and expects byte-identical pages — the property the CI -count=2 rerun
// guards inside one process as well.
func TestQueryBuilderPaginationDeterminism(t *testing.T) {
	pagesA, fullA := runPages(t, paginationEngine(t, 13))
	pagesB, fullB := runPages(t, paginationEngine(t, 13))
	if len(fullA) != len(fullB) {
		t.Fatalf("full sets differ: %d vs %d", len(fullA), len(fullB))
	}
	for i := range fullA {
		if fullA[i] != fullB[i] {
			t.Fatalf("full rank %d differs: %+v vs %+v", i, fullA[i], fullB[i])
		}
	}
	for p := range pagesA {
		if len(pagesA[p]) != len(pagesB[p]) {
			t.Fatalf("page %d sizes differ", p)
		}
		for i := range pagesA[p] {
			if pagesA[p][i] != pagesB[p][i] {
				t.Fatalf("page %d rank %d differs: %+v vs %+v", p, i, pagesA[p][i], pagesB[p][i])
			}
		}
	}
}

// TestQueryRegisterAdOwnCampaignID pins the deterministic campaign-ID
// path: each registration returns the ID its own transaction's event
// carries, even with several matching campaigns live.
func TestQueryRegisterAdOwnCampaignID(t *testing.T) {
	e := energyEngine(t)
	advA := e.NewAccount("brand-a", 10_000)
	advB := e.NewAccount("brand-b", 10_000)
	idA, err := e.RegisterAd(advA, []string{"electricity"}, 10, 500)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := e.RegisterAd(advB, []string{"electricity", "solar"}, 20, 500)
	if err != nil {
		t.Fatal(err)
	}
	if idA == idB {
		t.Fatalf("both registrations returned campaign %d", idA)
	}
	adA, ok := e.Cluster.QB.AdInfo(idA)
	if !ok || adA.Advertiser.String() != advA.Address() {
		t.Fatalf("campaign %d belongs to %v, want %s", idA, adA.Advertiser, advA.Address())
	}
	adB, ok := e.Cluster.QB.AdInfo(idB)
	if !ok || adB.Advertiser.String() != advB.Address() {
		t.Fatalf("campaign %d belongs to %v, want %s", idB, adB.Advertiser, advB.Address())
	}
	// A registered a lower-bid campaign: with both live, a search still
	// pairs B's higher bid first, and clicking pays against B's budget.
	_, ads, err := e.Search("electricity", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ads) < 2 || ads[0].ID != idB {
		t.Fatalf("ads = %+v, want campaign %d first", ads, idB)
	}
}
