package queenbee

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
)

// soakClients is the goroutine count of the concurrency soak — the
// serving contract is asserted at this width on every `go test -race`.
const soakClients = 16

// soakQuery is one shaped request a soak client issues.
type soakQuery struct {
	label string
	run   func(e *Engine) (*Response, error)
}

// soakWorkload builds the mixed query shapes of one client: flat AND,
// OR, phrase, parsed boolean with exclusion, site: filter, pagination.
// Clients get rotated vocabulary so the shard waves overlap but differ.
func soakWorkload(corp *corpus.Corpus, client int) []soakQuery {
	v := func(i int) string { return corp.Vocab((client + i) % 12) }
	words := strings.Fields(corp.Docs[client%len(corp.Docs)].Text)
	phrase := words[0]
	if len(words) > 1 {
		phrase = words[0] + " " + words[1]
	}
	and := v(0) + " " + v(1)
	or := v(0) + " " + v(2)
	parsed := fmt.Sprintf("%s OR %s -%s", v(0), v(3), v(4))
	site := fmt.Sprintf("%s site:dweb://wiki/page-000", v(0))
	return []soakQuery{
		{"all:" + and, func(e *Engine) (*Response, error) { return e.Query(and).All().Limit(5).Run() }},
		{"any:" + or, func(e *Engine) (*Response, error) { return e.Query(or).Any().Limit(5).Run() }},
		{"phrase:" + phrase, func(e *Engine) (*Response, error) { return e.Query(phrase).Phrase().Limit(5).Run() }},
		{"parsed:" + parsed, func(e *Engine) (*Response, error) { return e.Query(parsed).Limit(5).Run() }},
		{"site:" + site, func(e *Engine) (*Response, error) { return e.Query(site).Limit(5).Run() }},
		{"page2:" + v(0), func(e *Engine) (*Response, error) { return e.Query(v(0)).All().Page(2, 3).Run() }},
	}
}

// soakEngine publishes a corpus and fully indexes and ranks it. Extra
// options (pool size, hedging, deadlines) append after the base shape.
func soakEngine(tb testing.TB, seed uint64, docs int, extra ...Option) (*Engine, *corpus.Corpus) {
	tb.Helper()
	e := New(append([]Option{WithSeed(seed), WithPeers(12), WithBees(3)}, extra...)...)
	owner := e.NewAccount("soak-owner", 10_000_000)
	ccfg := corpus.DefaultConfig()
	ccfg.Seed = seed
	ccfg.NumDocs = docs
	corp := corpus.Generate(ccfg)
	for _, d := range corp.Docs {
		if err := e.Publish(owner, d.URL, d.Text, d.Links); err != nil {
			tb.Fatal(err)
		}
	}
	e.RunUntilIdle()
	e.ComputeRanks(4)
	return e, corp
}

// canonical serializes the parts of a response the determinism contract
// covers: results, ads and totals. Simulated costs are excluded — every
// message advances its link's jitter stream, so repeat queries observe
// different (still seed-deterministic) costs.
func canonical(tb testing.TB, resp *Response) string {
	tb.Helper()
	b, err := json.Marshal(struct {
		Results []Result
		Ads     []Ad
		Total   int
	}{resp.Results, resp.Ads, resp.Total})
	if err != nil {
		tb.Fatal(err)
	}
	return string(b)
}

// TestQueryConcurrencySoak is the serving determinism soak: 16 client
// goroutines fire mixed AND/OR/phrase/parsed/site:/paginated queries at
// one engine, and every response must be byte-identical to the same
// client's sequential run on the same seed. (The TestQuery name prefix
// keeps it inside CI's determinism re-run.)
func TestQueryConcurrencySoak(t *testing.T) {
	e, corp := soakEngine(t, 7, 24)

	// Sequential baseline: client by client, query by query.
	baseline := make([][]string, soakClients)
	for c := 0; c < soakClients; c++ {
		for _, q := range soakWorkload(corp, c) {
			resp, err := q.run(e)
			if err != nil {
				t.Fatalf("sequential %s: %v", q.label, err)
			}
			baseline[c] = append(baseline[c], canonical(t, resp))
		}
	}

	// Concurrent pass over the same engine: all clients at once, twice,
	// so later rounds race against warm and mixed cache states too.
	for round := 0; round < 2; round++ {
		var wg sync.WaitGroup
		for c := 0; c < soakClients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i, q := range soakWorkload(corp, c) {
					resp, err := q.run(e)
					if err != nil {
						t.Errorf("round %d client %d %s: %v", round, c, q.label, err)
						return
					}
					if got := canonical(t, resp); got != baseline[c][i] {
						t.Errorf("round %d client %d %s diverged:\nconcurrent %s\nsequential %s",
							round, c, q.label, got, baseline[c][i])
						return
					}
				}
			}(c)
		}
		wg.Wait()
	}
}

// TestQueryConcurrentThroughput measures aggregate serving throughput in
// the simulator's own currency, simulated time: a single sequential
// driver pays the sum of every query's latency, while 8 concurrent
// clients only pay their slowest member (each client's own queries stay
// sequential). The modeled speedup at 8 clients must be ≥ 4× — the
// serving claim queenbeed is built on. Costs are measured from real
// goroutine executions, so -race patrols the same path.
func TestQueryConcurrentThroughput(t *testing.T) {
	const clients = 8
	e, corp := soakEngine(t, 3, 24)

	perClient := make([]int64, clients) // summed simulated latency, ns
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var sum int64
			for _, q := range soakWorkload(corp, c) {
				resp, err := q.run(e)
				if err != nil {
					t.Errorf("client %d %s: %v", c, q.label, err)
					return
				}
				sum += int64(resp.Cost.Latency)
			}
			perClient[c] = sum
		}(c)
	}
	wg.Wait()

	var serialized, concurrent int64
	for _, s := range perClient {
		if s == 0 {
			t.Fatal("a client accumulated no simulated cost")
		}
		serialized += s
		if s > concurrent {
			concurrent = s
		}
	}
	speedup := float64(serialized) / float64(concurrent)
	t.Logf("simulated makespan: serialized %v, %d clients %v → %.1f× aggregate throughput",
		time.Duration(serialized), clients, time.Duration(concurrent), speedup)
	if speedup < 4 {
		t.Fatalf("aggregate throughput at %d clients = %.2f×, want ≥ 4×", clients, speedup)
	}
}
