package queenbee

// The benchmark harness: one testing.B benchmark per experiment (E1–E13,
// see DESIGN.md §3 — these regenerate the reproduction's tables/figures)
// plus micro-benchmarks for the ablations (A1 intersection kernels, A3
// replication, A4 segment merge policy) and the hot inner loops.
//
// Run with:
//
//	go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/dht"
	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/netsim"
	"repro/internal/rank"
	"repro/internal/xrand"
)

// benchExperiment runs a whole experiment per iteration; the tables land
// in b.Logf on -v so `-bench` output stays scannable.
func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables := e.Run(1)
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

func BenchmarkE1EndToEnd(b *testing.B)    { benchExperiment(b, "E1") }
func BenchmarkE2Replication(b *testing.B) { benchExperiment(b, "E2") }
func BenchmarkE3Resilience(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkE4DDoS(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5Freshness(b *testing.B)   { benchExperiment(b, "E5") }
func BenchmarkE6Tamper(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7BeeScaling(b *testing.B)  { benchExperiment(b, "E7") }
func BenchmarkE8PageRank(b *testing.B)    { benchExperiment(b, "E8") }
func BenchmarkE9Intersect(b *testing.B)   { benchExperiment(b, "E9") }
func BenchmarkE10Incentives(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11Collusion(b *testing.B)  { benchExperiment(b, "E11") }
func BenchmarkE12Scraper(b *testing.B)    { benchExperiment(b, "E12") }
func BenchmarkE13AdMarket(b *testing.B)   { benchExperiment(b, "E13") }
func BenchmarkE14Serving(b *testing.B)    { benchExperiment(b, "E14") }

// --- micro-benchmarks -------------------------------------------------

func BenchmarkAnalyze(b *testing.B) {
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = 10
	corp := corpus.Generate(cfg)
	text := corp.Docs[0].Text
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		index.Analyze(text)
	}
}

func BenchmarkSegmentBuild(b *testing.B) {
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = 50
	corp := corpus.Generate(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder := index.NewBuilder(1)
		for _, d := range corp.Docs {
			builder.Add(index.DocIDOf(d.URL), d.Text)
		}
		builder.Build()
	}
}

func BenchmarkSegmentEncodeDecode(b *testing.B) {
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = 50
	corp := corpus.Generate(cfg)
	builder := index.NewBuilder(1)
	for _, d := range corp.Docs {
		builder.Add(index.DocIDOf(d.URL), d.Text)
	}
	seg := builder.Build()
	enc := seg.Encode()
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := seg.Encode()
		if _, err := index.DecodeSegment(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmentMerge is ablation A4: merging a long chain of delta
// segments (what query time pays without compaction) vs the single
// pre-merged segment (what compaction buys).
func BenchmarkSegmentMerge(b *testing.B) {
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = 64
	corp := corpus.Generate(cfg)
	for _, chainLen := range []int{2, 8, 32} {
		var segs []*index.Segment
		per := len(corp.Docs) / chainLen
		for s := 0; s < chainLen; s++ {
			builder := index.NewBuilder(uint64(s + 1))
			for d := s * per; d < (s+1)*per; d++ {
				builder.Add(index.DocIDOf(corp.Docs[d].URL), corp.Docs[d].Text)
			}
			segs = append(segs, builder.Build())
		}
		b.Run(fmt.Sprintf("chain=%d", chainLen), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				index.Merge(segs)
			}
		})
	}
}

// lookupBenchSegment builds a 5k-term segment for the lookup benchmarks.
func lookupBenchSegment() *index.Segment {
	seg := index.NewSegment(1)
	for i := 0; i < 5000; i++ {
		term := fmt.Sprintf("term%05d", i)
		doc := index.DocID(i + 1)
		seg.Terms[term] = index.PostingList{{Doc: doc, TF: 2, Positions: []uint32{uint32(i), uint32(i + 7)}}}
		seg.DocLens[doc] = 40
	}
	return seg
}

// BenchmarkSegmentLookupCold measures a one-term query against a freshly
// decoded 5k-term segment: decode + single lookup. The v2 lazy format
// only parses the header and block index and decodes the one requested
// posting list, instead of materializing all 5k lists.
func BenchmarkSegmentLookupCold(b *testing.B) {
	enc := lookupBenchSegment().Encode()
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg, err := index.DecodeSegment(enc)
		if err != nil {
			b.Fatal(err)
		}
		if pl := seg.Postings("term02500"); len(pl) != 1 {
			b.Fatalf("postings = %+v", pl)
		}
	}
}

// BenchmarkSegmentLookupWarm measures the memoized repeat lookup on an
// already-decoded segment.
func BenchmarkSegmentLookupWarm(b *testing.B) {
	seg, err := index.DecodeSegment(lookupBenchSegment().Encode())
	if err != nil {
		b.Fatal(err)
	}
	seg.Postings("term02500")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pl := seg.Postings("term02500"); len(pl) != 1 {
			b.Fatalf("postings = %+v", pl)
		}
	}
}

// BenchmarkTopK covers both selection paths: k much smaller than the
// candidate set (bounded min-heap) and k covering the whole set (full
// sort).
func BenchmarkTopK(b *testing.B) {
	rng := xrand.New(3)
	docs := make([]index.ScoredDoc, 10_000)
	for i := range docs {
		docs[i] = index.ScoredDoc{Doc: index.DocID(i), Score: rng.Float64()}
	}
	for _, k := range []int{10, len(docs)} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := index.TopK(docs, k); len(got) != k {
					b.Fatalf("len = %d", len(got))
				}
			}
		})
	}
}

// BenchmarkIntersect is ablation A1 in isolation: merge vs gallop at a
// fixed 100:100k skew.
func BenchmarkIntersect(b *testing.B) {
	rng := xrand.New(1)
	long := make([]index.DocID, 100_000)
	v := index.DocID(0)
	for i := range long {
		v += index.DocID(1 + rng.Intn(2))
		long[i] = v
	}
	span := int(long[len(long)-1])
	short := make([]index.DocID, 100)
	v = 0
	for i := range short {
		v += index.DocID(1 + rng.Intn(span/100))
		short[i] = v
	}
	lists := [][]index.DocID{short, long}
	b.Run("merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			index.IntersectMerge(lists)
		}
	})
	b.Run("gallop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			index.IntersectGallop(lists)
		}
	})
}

// BenchmarkDHTLookup measures iterative lookup cost (simulated swarm,
// real CPU): the routing path length is the quantity of interest.
func BenchmarkDHTLookup(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("swarm=%d", n), func(b *testing.B) {
			net := netsim.New(netsim.DefaultConfig())
			nodes := make([]*dht.Node, n)
			for i := range nodes {
				nodes[i] = dht.NewNode(net, netsim.NodeID(fmt.Sprintf("n%04d", i)), dht.DefaultConfig())
			}
			for _, nd := range nodes[1:] {
				nd.Bootstrap([]dht.Contact{nodes[0].Self()})
			}
			for _, nd := range nodes {
				nd.Bootstrap([]dht.Contact{nodes[0].Self()})
				nd.RefreshBuckets(2)
			}
			key := dht.KeyOfString("bench-key")
			if _, _, err := nodes[1].Put(key, []byte("value"), 1); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reader := nodes[2+i%(n-2)]
				if _, _, _, err := reader.Get(key); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPageRank(b *testing.B) {
	rng := xrand.New(1)
	for _, n := range []int{100, 1000} {
		links := make(map[string][]string, n)
		for i := 0; i < n; i++ {
			var out []string
			for j := 0; j < 1+rng.Intn(4); j++ {
				out = append(out, fmt.Sprintf("u%05d", rng.Intn(n)))
			}
			links[fmt.Sprintf("u%05d", i)] = out
		}
		g := rank.NewGraph(links)
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rank.Compute(g, rank.DefaultOptions())
			}
		})
	}
}

// BenchmarkPublishPipeline measures the full creator path: store, chain,
// quorum indexing, materialization.
func BenchmarkPublishPipeline(b *testing.B) {
	e := New(WithSeed(1), WithPeers(12), WithBees(3))
	owner := e.NewAccount("bench-owner", 1_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		url := fmt.Sprintf("dweb://bench/%06d", i)
		if err := e.Publish(owner, url, fmt.Sprintf("benchmark document %d body content", i), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngest measures write-side round throughput as the bee pool
// grows: every iteration publishes a wave of pages (tasks spread across
// the pool's quorums) and drives rounds to completion. Two metrics
// matter, mirroring BenchmarkConcurrentSearch:
//
//   - sim_pages/s: pages indexed per simulated second of wave makespan —
//     the round engine's currency, where bees overlap their fetch/build
//     work and shards overlap their pointer writes;
//   - sim_speedup: the serial/wave latency ratio of the same rounds, the
//     write-side concurrency claim (≥2× at 8 bees, asserted by
//     TestIngestConcurrentThroughput).
func BenchmarkIngest(b *testing.B) {
	for _, bees := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("bees=%d", bees), func(b *testing.B) {
			e := New(WithSeed(1), WithPeers(12), WithBees(bees))
			owner := e.NewAccount("ingest-owner", 1<<40)
			const batch = 16
			next := 0
			b.ReportAllocs()
			b.ResetTimer()
			var serial, wave, pages int64
			for i := 0; i < b.N; i++ {
				for j := 0; j < batch; j++ {
					url := fmt.Sprintf("dweb://ingest/%06d", next)
					next++
					if _, err := e.Cluster.Publish(owner.acct, e.Cluster.RandomPeer(), url,
						fmt.Sprintf("ingest benchmark document %06d body content", next), nil); err != nil {
						b.Fatal(err)
					}
				}
				e.Cluster.Seal()
				for r := 0; r < 8; r++ {
					rr := e.RunRound()
					serial += int64(rr.Serial().Latency)
					wave += int64(rr.Wave().Latency)
					if open, _, _ := e.Cluster.QB.TaskCounts(); open == 0 {
						break
					}
				}
				pages += batch
			}
			b.StopTimer()
			if wave > 0 {
				b.ReportMetric(float64(pages)/(float64(wave)/1e9), "sim_pages/s")
				b.ReportMetric(float64(serial)/float64(wave), "sim_speedup")
			}
		})
	}
}

// BenchmarkIngestPipeline measures the streaming crawl pipeline end to
// end (fetch → extract → bounded queue → pipelined publish rounds) and
// reports simulated pages/s at the ISSUE's two operating points: 8 bees
// (commit-bound) and 64 bees (fetch-bound). Each iteration boots a
// fresh engine outside the timer and crawls a 256-page corpus.
func BenchmarkIngestPipeline(b *testing.B) {
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = 256
	cfg.MeanDocLen = 40
	corp := corpus.Generate(cfg)
	pages := make([]Page, len(corp.Docs))
	seeds := make([]string, len(corp.Docs))
	for i, d := range corp.Docs {
		pages[i] = Page{URL: d.URL, Text: d.Text, Links: d.Links}
		seeds[i] = d.URL
	}
	for _, bees := range []int{8, 64} {
		b.Run(fmt.Sprintf("bees=%d", bees), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var published int64
			var makespan, serialMakespan time.Duration
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e := New(WithSeed(1), WithPeers(12), WithBees(bees))
				owner := e.NewAccount("crawler", 1<<40)
				b.StartTimer()
				st, err := e.Crawl(context.Background(), seeds, CrawlOptions{
					Owner:        owner,
					Pages:        pages,
					FetchWorkers: 8,
					QueueDepth:   8,
					BatchSize:    32,
				})
				if err != nil {
					b.Fatal(err)
				}
				published += int64(st.Published)
				makespan += st.Makespan
				serialMakespan += st.SerialMakespan
			}
			b.StopTimer()
			if makespan > 0 {
				b.ReportMetric(float64(published)/makespan.Seconds(), "sim_pages/s")
				b.ReportMetric(float64(serialMakespan)/float64(makespan), "sim_speedup")
			}
		})
	}
}

// BenchmarkCompaction measures the write path's steady-state compaction
// cost under both policies: 32 uniform publish rounds against a
// 4-shard index, reporting bytes rewritten per round and the run's
// cumulative write amplification. The tiered policy (the default since
// segment format tiering landed) must hold compacted_B/round flat —
// each ingested byte is rewritten about once per tier promotion, i.e.
// O(log rounds) — where the monolithic policy rewrites the whole chain
// every firing and grows linearly (BENCH_ingest.json records the
// measured gap; E19 sweeps it across run lengths).
func BenchmarkCompaction(b *testing.B) {
	const rounds, docsPerRound = 32, 16
	for _, mono := range []bool{false, true} {
		name := "policy=tiered"
		if mono {
			name = "policy=monolithic"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var ingested, compacted, compactions int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				opts := []Option{WithSeed(1), WithPeers(10), WithBees(3), WithShards(4)}
				if mono {
					opts = append(opts, WithMonolithicCompaction(true))
				}
				e := New(opts...)
				owner := e.NewAccount("compact-owner", 1<<40)
				b.StartTimer()
				doc := 0
				for r := 0; r < rounds; r++ {
					pages := make([]Page, docsPerRound)
					for j := range pages {
						var links []string
						if doc > 0 {
							links = []string{fmt.Sprintf("dweb://compact/%05d", doc-1)}
						}
						pages[j] = Page{
							URL:   fmt.Sprintf("dweb://compact/%05d", doc),
							Text:  fmt.Sprintf("compaction benchmark corpus document %05d round %03d", doc, r),
							Links: links,
						}
						doc++
					}
					if _, err := e.PublishBatch(owner, pages); err != nil {
						b.Fatal(err)
					}
				}
				ws := e.WriteStats()
				ingested += ws.IngestedBytes
				compacted += ws.CompactedBytes
				compactions += int64(ws.Compactions)
			}
			b.StopTimer()
			b.ReportMetric(float64(compacted)/float64(int64(b.N)*rounds), "compacted_B/round")
			if ingested > 0 {
				b.ReportMetric(float64(ingested+compacted)/float64(ingested), "write_amp")
			}
			b.ReportMetric(float64(compactions)/float64(b.N), "compactions/run")
		})
	}
}

// BenchmarkSearch measures frontend query cost on a standing index.
func BenchmarkSearch(b *testing.B) {
	e := New(WithSeed(1), WithPeers(12), WithBees(3))
	owner := e.NewAccount("bench-owner", 1_000_000)
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = 40
	corp := corpus.Generate(cfg)
	for _, d := range corp.Docs {
		if err := e.Publish(owner, d.URL, d.Text, d.Links); err != nil {
			b.Fatal(err)
		}
	}
	e.RunUntilIdle()
	queries := corp.Queries(1, 32, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Search(queries[i%len(queries)].Text, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// scalingCorpusEngine boots an engine holding an ndocs-document corpus
// ingested as ONE batch (one commit-reveal round → one segment per
// shard, so queries hit the lazy v3 block-max path, not a merged chain).
func scalingCorpusEngine(tb testing.TB, ndocs int, opts ...Option) (*Engine, *corpus.Corpus) {
	tb.Helper()
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = ndocs
	cfg.MeanDocLen = 40
	corp := corpus.Generate(cfg)
	pages := make([]Page, len(corp.Docs))
	for i, d := range corp.Docs {
		pages[i] = Page{URL: d.URL, Text: d.Text, Links: d.Links}
	}
	base := []Option{WithSeed(1), WithPeers(12), WithBees(3)}
	e := New(append(base, opts...)...)
	owner := e.NewAccount("scaling-owner", 1<<40)
	if _, err := e.PublishBatch(owner, pages); err != nil {
		tb.Fatal(err)
	}
	e.RunUntilIdle()
	return e, corp
}

// BenchmarkSearchScaling measures top-10 query cost as the corpus grows
// 1× → 10× → 100× (48 → 4800 docs). The quantity of interest is how the
// scoring work scales: with block-max early termination the executor
// decodes only the blocks whose score bound can still beat the top-10
// threshold, so postings_scanned must grow far slower than the corpus
// (TestSearchScalingSublinear asserts ≤ 10× at 100×, and BENCH_search
// .json records the measured points). blocks_skipped counts the skip
// pointers taken; sim_ms is the simulated network cost per query.
func BenchmarkSearchScaling(b *testing.B) {
	for _, ndocs := range []int{48, 480, 4800} {
		b.Run(fmt.Sprintf("docs=%d", ndocs), func(b *testing.B) {
			e, corp := scalingCorpusEngine(b, ndocs)
			queries := corp.Queries(7, 32, 1)
			b.ReportAllocs()
			b.ResetTimer()
			var scanned, skippedBlocks, simCost int64
			for i := 0; i < b.N; i++ {
				resp, err := e.Query(queries[i%len(queries)].Text).Limit(10).Run()
				if err != nil {
					b.Fatal(err)
				}
				scanned += resp.ScoreStats.PostingsScanned
				skippedBlocks += resp.ScoreStats.BlocksSkipped
				simCost += int64(resp.Cost.Latency)
			}
			b.StopTimer()
			b.ReportMetric(float64(scanned)/float64(b.N), "postings_scanned/op")
			b.ReportMetric(float64(skippedBlocks)/float64(b.N), "blocks_skipped/op")
			b.ReportMetric(float64(simCost)/float64(b.N)/1e6, "sim_ms/op")
		})
	}
}

// BenchmarkConcurrentSearch measures serving throughput against one
// shared engine as the client count grows — plus a pooled serving-tier
// variant (pool=4, hedged). Every iteration runs each client's mixed
// workload (AND/OR/phrase/parsed/site:/paginated) on its own goroutine.
// The readings:
//
//   - sim_q/s: aggregate queries per simulated second — the serving
//     model's currency. For pool=1 the makespan is the slowest client
//     (concurrent clients overlap their network waves instead of
//     queueing behind a single driver: the ≥4×-at-8-clients claim);
//     for the pooled variant it is the busiest *frontend* (each
//     frontend serializes its own queries in simulated time), so
//     sim_speedup there is the pool's load-spread win.
//   - sim_p99_ms: the p99 simulated per-query latency — the tail that
//     hedged reads attack.
//   - ns/op wall time, which additionally tracks real contention on the
//     engine's caches, singleflight and netsim streams (and scales with
//     cores, which CI runners may have only one of).
func BenchmarkConcurrentSearch(b *testing.B) {
	shapes := []struct{ clients, pool int }{{1, 1}, {2, 1}, {4, 1}, {8, 1}, {8, 4}}
	for _, sh := range shapes {
		name := fmt.Sprintf("clients=%d", sh.clients)
		var opts []Option
		if sh.pool > 1 {
			name += fmt.Sprintf("/pool=%d", sh.pool)
			opts = append(opts, WithFrontendPool(sh.pool), WithHedgedReads(true))
		}
		b.Run(name, func(b *testing.B) {
			e, corp := soakEngine(b, 3, 24, opts...)
			queriesPerClient := int64(len(soakWorkload(corp, 0)))
			var latMu sync.Mutex
			var lats []float64 // simulated ms per query
			b.ReportAllocs()
			b.ResetTimer()
			var simSerial, simConcurrent, queries int64
			for i := 0; i < b.N; i++ {
				perClient := make([]int64, sh.clients)
				var wg sync.WaitGroup
				for c := 0; c < sh.clients; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						var sum int64
						local := make([]float64, 0, queriesPerClient)
						for _, q := range soakWorkload(corp, c) {
							resp, err := q.run(e)
							if err != nil {
								b.Error(err)
								return
							}
							sum += int64(resp.Cost.Latency)
							local = append(local, float64(resp.Cost.Latency)/1e6)
						}
						perClient[c] = sum
						latMu.Lock()
						lats = append(lats, local...)
						latMu.Unlock()
					}(c)
				}
				wg.Wait()
				for _, s := range perClient {
					simSerial += s
				}
				simConcurrent += maxInt64(perClient)
				queries += int64(sh.clients) * queriesPerClient
			}
			b.StopTimer()
			if sh.pool > 1 {
				// The serving tier's own makespan: the busiest frontend,
				// accumulated over every iteration.
				var sum, busiest int64
				for _, f := range e.PoolStats().Frontends {
					sum += int64(f.BusySim)
					busiest = max(busiest, int64(f.BusySim))
				}
				simSerial, simConcurrent = sum, busiest
			}
			if simConcurrent > 0 {
				b.ReportMetric(float64(queries)/(float64(simConcurrent)/1e9), "sim_q/s")
				b.ReportMetric(float64(simSerial)/float64(simConcurrent), "sim_speedup")
			}
			if len(lats) > 0 {
				sort.Float64s(lats)
				b.ReportMetric(lats[len(lats)*99/100], "sim_p99_ms")
			}
		})
	}
}

func maxInt64(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// BenchmarkMinHash measures the scraper-defense signature cost.
func BenchmarkMinHash(b *testing.B) {
	cfg := corpus.DefaultConfig()
	cfg.NumDocs = 2
	corp := corpus.Generate(cfg)
	text := corp.Docs[0].Text
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		index.SignatureOf(text)
	}
}
