package queenbee

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/query"
)

// Cost is the simulated network expense of an operation: wall-clock
// latency (parallel waves count their slowest leg, not the sum), bytes
// moved and messages exchanged. Aggregate serving throughput is measured
// against it — see BenchmarkConcurrentSearch and docs/serving.md.
type Cost = netsim.Cost

// Typed sentinel errors of the query surface. Match with errors.Is.
var (
	// ErrEmptyQuery means no searchable term survived analysis (empty
	// string, only stopwords, or only operators/filters).
	ErrEmptyQuery = query.ErrEmptyQuery
	// ErrBadSyntax means the query string does not parse, or combines
	// operators in a way the planner cannot execute (e.g. an exclusion
	// with no positive term).
	ErrBadSyntax = query.ErrBadSyntax
	// ErrShardUnavailable means an index shard could not be loaded from
	// the DHT (node down, partition, tampered segment).
	ErrShardUnavailable = core.ErrShardUnavailable
	// ErrDeadlineExceeded means the query's request lifecycle ended
	// first: its simulated deadline passed (Deadline,
	// WithDefaultDeadline) or its context was cancelled. The response
	// carries a partial Explain trace costing exactly the work that ran.
	ErrDeadlineExceeded = core.ErrDeadlineExceeded
)

// ScoreStats counts the scoring work one query performed: postings
// actually scored or probed, and the blocks / candidate documents the
// block-max executor proved irrelevant and skipped without decoding
// (docs/serving.md, "Early termination"). Skips change only the work
// counted here — never the results.
type ScoreStats = core.ScoreStats

// Explain is the structured execution trace of one query: the analyzed
// terms, the shard wave, the executed plan tree with per-node candidate
// counts, and the simulated costs. Request one with QueryBuilder.Explain.
type Explain = core.Explain

// ExplainNode is one operator of an executed plan (see Explain).
type ExplainNode = core.ExplainNode

// Response is the full answer to a structured query.
type Response struct {
	Results []Result
	Ads     []Ad
	// Total counts every document that matched the boolean query,
	// before pagination truncated to the requested page — ceil(Total /
	// pageSize) is the page count.
	Total int
	// Cost is the simulated network expense of answering the query.
	Cost Cost
	// ScoreStats counts the scoring work behind this answer: postings
	// scanned versus blocks and documents skipped by early termination.
	ScoreStats ScoreStats
	// Explain is non-nil when the builder requested an execution trace.
	Explain *Explain
	// Degraded is non-nil when the deployment runs WithDegradedReads and
	// this answer was assembled from a partial shard wave: it names the
	// failed shards, the completeness fraction, and the first cause.
	Degraded *Degraded
}

// QueryBuilder assembles one structured search fluently:
//
//	resp, err := engine.Query(`solar "wind turbine" OR panels -nuclear site:dweb://energy/`).
//		Page(2, 10).
//		WithSnippets().
//		Explain().
//		Run()
//
// The default mode parses the full query language: uppercase OR/AND
// operators, '-' exclusions, quoted phrases, site: URL-prefix filters,
// and parentheses (docs/query-language.md has the grammar). All, Any
// and Phrase switch to the flat legacy modes, which treat every one of
// those as plain text.
//
// Builders are single-use: configure, then Run once.
type QueryBuilder struct {
	engine    *Engine
	ctx       context.Context
	raw       string
	mode      core.PlanMode
	limit     int
	offset    int
	snippets  bool
	explainOn bool
	deadline  time.Duration
}

// Query starts a structured query over the deployment's index.
func (e *Engine) Query(raw string) *QueryBuilder {
	return &QueryBuilder{engine: e, raw: raw, limit: 10}
}

// QueryCtx is Query with a request lifecycle: cancelling ctx abandons
// the query's remaining simulated waves and Run fails with
// ErrDeadlineExceeded. Combine with Deadline for a simulated latency
// bound.
func (e *Engine) QueryCtx(ctx context.Context, raw string) *QueryBuilder {
	b := e.Query(raw)
	b.ctx = ctx
	return b
}

// All switches to the flat conjunctive mode: every analyzed term must
// match, operators and quotes are plain text (what Search always did).
func (b *QueryBuilder) All() *QueryBuilder {
	b.mode = core.PlanAll
	return b
}

// Any switches to the flat disjunctive mode: any analyzed term may
// match (what SearchAny always did).
func (b *QueryBuilder) Any() *QueryBuilder {
	b.mode = core.PlanAny
	return b
}

// Phrase switches to the flat phrase mode: the analyzed terms must
// appear adjacent and in order (what SearchPhrase always did).
func (b *QueryBuilder) Phrase() *QueryBuilder {
	b.mode = core.PlanPhrase
	return b
}

// Limit caps the number of returned results. Equivalent to Page(1, k).
func (b *QueryBuilder) Limit(k int) *QueryBuilder {
	if k > 0 {
		b.limit = k
		b.offset = 0
	}
	return b
}

// Page selects page n (1-based) of the given size. Pages tile the
// ranked result list: disjoint, in rank order, and their union is the
// full result set. A non-positive size keeps the current page size
// (the default 10, or a prior Limit), so the page number still applies.
func (b *QueryBuilder) Page(n, size int) *QueryBuilder {
	if n < 1 {
		n = 1
	}
	if size <= 0 {
		size = b.limit
	}
	b.limit = size
	b.offset = (n - 1) * size
	return b
}

// WithSnippets attaches a text snippet around the first match of each
// result (costs one extra content fetch per result, modeled as a
// parallel wave).
func (b *QueryBuilder) WithSnippets() *QueryBuilder {
	b.snippets = true
	return b
}

// Explain records the executed plan — per-node candidate counts, the
// shard wave, simulated costs — into Response.Explain.
func (b *QueryBuilder) Explain() *QueryBuilder {
	b.explainOn = true
	return b
}

// Deadline bounds the query's simulated latency: once the accumulated
// simulated cost reaches d at a checkpoint, the remaining waves are
// abandoned and Run fails with ErrDeadlineExceeded plus a partial
// trace. Deterministic per seed. Zero (the default) inherits the
// engine's WithDefaultDeadline.
func (b *QueryBuilder) Deadline(d time.Duration) *QueryBuilder {
	if d > 0 {
		b.deadline = d
	}
	return b
}

// Run executes the query and composes the response.
//
// On ErrDeadlineExceeded the returned *Response is non-nil alongside
// the error: it carries no results — the simulated client was gone —
// but its Cost and Explain record the partial work that ran (serving
// surfaces return it as the 504 body). Every other error returns a nil
// response.
func (b *QueryBuilder) Run() (*Response, error) {
	ctx := b.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	resp, err := b.engine.pool.ExecuteCtx(ctx, core.Query{
		Raw:      b.raw,
		Mode:     b.mode,
		Limit:    b.limit,
		Offset:   b.offset,
		Snippets: b.snippets,
		Explain:  b.explainOn,
		Deadline: b.deadline,
	})
	if err != nil {
		if errors.Is(err, ErrDeadlineExceeded) {
			return &Response{Cost: resp.Cost, Explain: resp.Explain}, err
		}
		return nil, err
	}
	out := &Response{
		Results:    make([]Result, 0, len(resp.Results)),
		Ads:        make([]Ad, 0, len(resp.Ads)),
		Total:      resp.Total,
		Cost:       resp.Cost,
		ScoreStats: resp.ScoreStats,
		Explain:    resp.Explain,
		Degraded:   resp.Degraded,
	}
	for _, r := range resp.Results {
		out.Results = append(out.Results, Result{URL: r.URL, Score: r.Score, Rank: r.Rank, Snippet: r.Snippet})
	}
	for _, a := range resp.Ads {
		out.Ads = append(out.Ads, Ad{ID: a.ID, Keywords: a.Keywords, BidPerClick: a.BidPerClick})
	}
	return out, nil
}
