// Package queenbee is a simulation-complete implementation of QueenBee,
// the decentralized search engine for the Decentralized Web proposed in
// "Decentralized Search on Decentralized Web" (Lai, Liu, Lo, Kao, Yiu —
// CIDR 2019, arXiv:1809.00939).
//
// The package is a facade over the full stack in internal/: a simulated
// P2P network, a Kademlia DHT, an IPFS-like content-addressed store, a
// proof-of-authority blockchain carrying the QueenBee smart contract
// (publishing, worker-bee staking, commit–reveal task verification, the
// ad marketplace and the honey reward flows), a sharded inverted index,
// distributed PageRank, and the query frontend.
//
// A minimal session:
//
//	engine := queenbee.New(queenbee.WithBees(4))
//	alice := engine.NewAccount("alice", 1_000)
//	engine.Publish(alice, "dweb://hive", "bees make honey", nil)
//	engine.Run(3) // worker bees index the publish
//	results, _, _ := engine.Search("honey", 10)
//
// Everything runs on one machine against a deterministic virtual clock:
// no real network, no real time, fully reproducible per seed.
//
// # Structured queries
//
// Search answers flat conjunctive queries. The Query builder speaks the
// full query language (docs/query-language.md): uppercase OR/AND
// operators, '-' exclusions, "quoted phrases", site: URL-prefix
// filters, and parentheses — compiled into an execution plan that loads
// each distinct index shard once, as one parallel fetch wave, then
// intersects, unions and subtracts posting lists per operator:
//
//	resp, err := engine.Query(`solar "wind turbine" OR panels -nuclear site:dweb://energy/`).
//		Page(2, 10).      // second page of ten results
//		WithSnippets().   // fetch content, attach match snippets
//		Explain().        // record the executed plan
//		Run()
//
// resp.Total counts every matching document, resp.Results carries the
// requested page in deterministic rank order, and resp.Explain reports
// the plan tree with per-node candidate counts and the simulated
// network cost of each stage. Parse and planning failures surface as
// the typed sentinels ErrEmptyQuery, ErrBadSyntax and
// ErrShardUnavailable (match with errors.Is); the legacy Search,
// SearchAny, SearchPhrase and SearchSnippets remain as thin wrappers
// over the same pipeline.
//
// # Query hot path
//
// The read side is built to stay allocation-light under heavy query
// traffic. Index segments are serialized in a block-max v3 format
// (docs/segment-format.md): a sorted term dictionary whose entries
// carry per-8-posting-block skip data — last DocID, byte offset, and an
// exact block-max score frontier — over a postings region that switches
// dense terms to bitmap encoding, so a query decodes only the posting
// blocks it touches, memoized per immutable segment. Frontends layer
// two caches over the DHT — immutable segments by content digest and
// each shard's merged chain keyed by its digest chain — and fetch the
// distinct shards of a multi-term query as one parallel wave (costed as
// the slowest shard, not the sum, while staying deterministic per
// seed). Ranking is document-at-a-time block-max WAND (docs/serving.md):
// per-term cursors drive top-k early termination against a bounded
// min-heap threshold, skipping every posting block that provably cannot
// reach the current page — byte-identical to exhaustive scoring
// (WithExhaustiveScoring forces the legacy loop; Response.ScoreStats
// reports postings scanned vs skipped). Segment encoding remains
// byte-deterministic, which commit–reveal task verification depends on.
//
// # Concurrent serving
//
// The query side is safe for concurrent use, and concurrency costs no
// reproducibility: the network simulation derives an independent RNG
// stream per (caller, target) link, so the same seed yields the same
// results whether queries run one at a time or raced across goroutines
// (docs/serving.md has the design; WithSharedNetStream restores the
// legacy single-stream draws for golden-cost comparisons). Shard waves
// execute as true goroutine fan-outs, concurrent fetches of the same
// segment digest collapse into one DHT read (singleflight), and both
// frontend caches are byte-budgeted LRUs (WithCacheBudget) so a
// long-lived serving deployment stays bounded under publish churn.
// cmd/queenbeed serves /search, /explain, /healthz and /stats over HTTP
// against one shared engine on exactly this contract; write-side
// methods remain a single deterministic driver.
//
// # The serving tier: frontend pool, deadlines, hedged reads
//
// Queries are served by a pool of per-peer frontends
// (WithFrontendPool(n)) behind a deterministic least-loaded balancer —
// fewest in-flight, then least accumulated simulated serving time, then
// round-robin. Results are frontend-independent, so pool size never
// changes responses, only costs and serving makespan (pool=4 cuts an
// 8-client workload's simulated makespan ≈3×). WithHedgedReads
// duplicates each query's slowest shard fetch on a second frontend:
// first reply wins the latency, both replies pay bytes, and a failed
// primary fetch is rescued by the hedge.
//
// Every query carries a request lifecycle: context.Context (SearchCtx,
// QueryCtx) plus a simulated deadline (Deadline, WithDefaultDeadline)
// thread through the shard, statistics and snippet waves down to the
// simulated network, whose CallCtx short-circuits cancelled calls
// without consuming RNG draws — cancellation never desyncs per-seed
// determinism. A stopped query abandons its remaining wave members,
// leaves caches and singleflights consistent, and fails with the typed
// ErrDeadlineExceeded carrying a partial Explain trace costed as the
// partial wave that actually ran. Same seed + same deadline ⇒ the same
// stop point, every run.
//
// # Self-healing under churn
//
// The swarm is made of personal devices that crash, lose connectivity
// and return without warning (docs/robustness.md has the full design).
// WithFaultPlan installs a deterministic churn schedule — crashes,
// recoveries, partitions, lossy-link episodes — that advances with the
// chain, firing the same events on the same victims every run. Beneath
// it, the DHT call layer retries transient failures (dropped messages,
// overload shedding — netsim.Retryable) with deterministic
// backoff+jitter, and iterative lookups widen their shortlist from the
// full routing table when churn has eaten it. WithMaintenance runs a
// self-healing pass after every round: under-replicated shard pointers
// are republished, segments below K are re-seeded from a surviving
// replica (hash-verified), and live peers re-announce their provider
// records; Engine.RepairStats reports the accumulated repair work.
// WithDegradedReads lets a query whose wave lost some shards return the
// partial answer with a typed Degraded warning instead of failing, and
// Engine.Ready summarizes per-shard reachability — served by queenbeed
// as GET /readyz (200/503), distinct from /healthz liveness.
//
// # Concurrent ingest
//
// Inside that single driver, the write side is itself concurrent
// (docs/indexing.md): each protocol round fans the bees' fetch-and-build
// work out as a goroutine wave, materializes the round's winning
// segments as a batch — one shard-pointer read-modify-write per touched
// shard and one stats bump per round, O(shards) instead of
// O(segments×shards) — and reports wave-vs-serial costs in a
// RoundReceipt. PublishBatch ingests N pages as ONE atomic contract
// transaction and one commit-reveal cycle, with the quorum building a
// single multi-doc segment. DHT state stays byte-identical per seed
// whether rounds run parallel or sequential (WithParallelRounds);
// cmd/queenbeed's POST /publish serves batch ingest over HTTP under a
// write lock while queries keep flowing on the read lock.
//
// # Streaming ingest
//
// Above batch publishing sits a streaming crawl pipeline
// (docs/ingest.md): Engine.Crawl walks a link graph from seed URLs
// through staged fetch workers (seeded per-URL latency and failures), an
// in-order sequencer with MinHash near-duplicate demotion (scraper
// mirrors are counted and dropped, but still crawled through), a
// bounded queue with real backpressure, and a batch indexer whose
// commit/reveal rounds pipeline in simulated time — batch N+1's commit
// overlaps round N's reveal, so ingest runs at the slower phase's pace
// instead of the sum. Execution against the cluster stays strictly
// sequential, so a pipelined crawl leaves the DHT byte-identical to a
// plain PublishBatch loop; IngestStats reports fetched/deduped/published
// counts, simulated makespan, queue and stall waits, and the pipelining
// speedup. cmd/queenbeed boots from a crawl with -crawl and surfaces the
// counters under GET /stats.
//
// # Write-path scaling: tiered compaction and rank epochs
//
// The write side stays affordable as the corpus grows (docs/indexing.md
// has the full policy). Each shard pointer runs size-tiered compaction:
// fresh batch segments enter tier 0, any tier reaching 4 runs merges —
// whole bucket, at most one merge per shard per round — into the next
// tier, and merged runs are restricted to the terms that hash to their
// shard (full doc-length tombstones retained, so shadowing survives the
// restriction). Write amplification is therefore bounded by the tier
// count — each ingested byte is rewritten about once per tier
// promotion, O(log rounds) tiers — instead of growing with history;
// Engine.WriteStats ledgers ingested vs compacted bytes and
// RoundReceipt carries the per-round figure. WithMonolithicCompaction
// restores the legacy whole-chain merge as an experiment control, with
// search responses byte-identical across policies.
//
// The rank-epoch contract: PageRank refreshes ride the publish stream
// as epochs. A full epoch (ComputeRanks) recomputes the whole graph; a
// delta epoch (ComputeRanksDelta, or the crawl's RankEvery cadence)
// re-walks only the dirty closure — pages edited since the last epoch
// plus everything reachable from them — warm-started from the previous
// vector, at cost proportional to the closure, not the graph. Delta
// epochs are approximate BY DESIGN: unreached ranks keep their stale
// values, drift is bounded by the residual tolerance, and top-k
// ordering is preserved for any head separated by more than the drift.
// Exactness has an escape hatch, not an apology: every
// WithRankFullEvery(n)-th epoch runs full (default 4), and a caller
// needing exact ranks runs one full epoch to zero all drift.
// Engine.RankStatus reports the epoch counter, the last full epoch and
// deltas-since-full, so staleness is observable; dirty sets are
// snapshotted on-chain in sorted order, so epochs are deterministic and
// commit-reveal verifiable like any other task. TestScaleMillion drives
// the whole write path — crawl, tiered compaction, delta epochs closed
// by a full epoch, then serving — at 10^4 pages in CI (-short), 10^5
// under QUEENBEE_SCALE_CI=1 and the full million under QUEENBEE_SCALE=1,
// with heap and write-amplification budgets asserted; E19 tabulates
// flat-vs-linear compaction cost and closure-vs-graph rank cost.
//
// # Static enforcement
//
// The determinism and cost-accounting contract is enforced statically
// as well as by the soaks: cmd/detlint (docs/static-analysis.md) is a
// dependency-free analysis suite that flags order-sensitive map
// iteration, wall-clock reads outside cmd/, math/rand use outside
// internal/xrand, swallowed dht/store/chain errors, and dropped
// netsim.Cost values. The tree stays clean — every sanctioned exception
// carries a reasoned //detlint:ignore directive, and the per-analyzer
// suppression counts print in every CI log.
package queenbee
