// Package queenbee is a simulation-complete implementation of QueenBee,
// the decentralized search engine for the Decentralized Web proposed in
// "Decentralized Search on Decentralized Web" (Lai, Liu, Lo, Kao, Yiu —
// CIDR 2019, arXiv:1809.00939).
//
// The package is a facade over the full stack in internal/: a simulated
// P2P network, a Kademlia DHT, an IPFS-like content-addressed store, a
// proof-of-authority blockchain carrying the QueenBee smart contract
// (publishing, worker-bee staking, commit–reveal task verification, the
// ad marketplace and the honey reward flows), a sharded inverted index,
// distributed PageRank, and the query frontend.
//
// A minimal session:
//
//	engine := queenbee.New(queenbee.WithBees(4))
//	alice := engine.NewAccount("alice", 1_000)
//	engine.Publish(alice, "dweb://hive", "bees make honey", nil)
//	engine.Run(3) // worker bees index the publish
//	results, _ := engine.Search("honey", 10)
//
// Everything runs on one machine against a deterministic virtual clock:
// no real network, no real time, fully reproducible per seed.
package queenbee
