package queenbee

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/netsim"
)

// Engine is a running QueenBee deployment (simulated swarm + chain +
// contract + serving tier). Create with New; drive with Publish / Run /
// Search.
//
// Concurrency: the query side — Search, SearchAny, SearchPhrase,
// SearchSnippets, the *Ctx variants, Query builders, Fetch — is safe
// for concurrent use, and with the default per-link network streams the
// same seed yields byte-identical results whether queries run
// sequentially or raced across goroutines (cmd/queenbeed serves HTTP on
// exactly this contract; docs/serving.md has the design). Queries are
// served by a pool of per-peer frontends behind a deterministic
// least-loaded balancer (WithFrontendPool); results are
// frontend-independent, so the pool size never changes responses, only
// simulated costs and serving makespan. Mutating methods (Publish,
// PublishBatch, Run, NewAccount, RegisterAd, Click, ComputeRanks, ...)
// remain a single deterministic driver: do not run them concurrently
// with each other or with queries. Inside that single driver the write
// side is itself concurrent — ProcessRound fans bee compute and shard
// materialization out as goroutine waves (docs/indexing.md) — without
// costing determinism: same-seed runs produce byte-identical DHT state
// whether rounds run parallel or sequential (WithParallelRounds).
type Engine struct {
	// Cluster exposes the full simulation for advanced use (experiment
	// harnesses, fault injection). Most callers never need it.
	Cluster *core.Cluster
	pool    *core.FrontendPool

	// Accumulated ingest counters across every Crawl on this engine.
	// Guarded by its own mutex so IngestStats stays readable from
	// serving surfaces (queenbeed GET /stats) while a crawl runs.
	ingestMu sync.Mutex
	ingest   ingest.Stats
}

// Account is a funded identity that can publish, advertise and click.
type Account struct {
	name string
	acct *chain.Account
}

// Name returns the account's human-readable name.
func (a *Account) Name() string { return a.name }

// Address returns the account's chain address in hex.
func (a *Account) Address() string { return a.acct.Address().String() }

// Result is one ranked search hit.
type Result struct {
	URL     string
	Score   float64
	Rank    float64
	Snippet string // set by SearchSnippets
}

// Ad is an advertisement attached to a search response.
type Ad struct {
	ID          uint64
	Keywords    []string
	BidPerClick uint64
}

// New boots a QueenBee deployment with the given options.
func New(opts ...Option) *Engine {
	cfg := core.DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	cluster := core.NewCluster(cfg)
	return &Engine{
		Cluster: cluster,
		pool:    core.NewFrontendPool(cluster, cfg.PoolSize, cfg.HedgedReads, cfg.DefaultDeadline),
	}
}

// NewAccount creates and funds an identity. Funds are spendable after
// the next Run (or immediately: NewAccount seals a block).
func (e *Engine) NewAccount(name string, honey uint64) *Account {
	acct := e.Cluster.NewAccount(name, honey)
	e.Cluster.Seal()
	return &Account{name: name, acct: acct}
}

// Balance returns an account's honey balance.
func (e *Engine) Balance(a *Account) uint64 {
	return e.Cluster.Chain.State().Balance(a.acct.Address())
}

// Publish stores content on the DWeb, registers it through the smart
// contract, and drives one protocol round so the worker bees commit to
// the index task while its commit window is open.
func (e *Engine) Publish(owner *Account, url, text string, links []string) error {
	_, err := e.Cluster.Publish(owner.acct, e.Cluster.RandomPeer(), url, text, links)
	if err != nil {
		return err
	}
	e.Cluster.Seal()
	e.Cluster.ProcessRound()
	return nil
}

// Page is one document of a batch publish.
type Page = core.BatchPage

// ErrBatchRejected marks a publish batch refused by validation —
// pre-flight (empty, duplicate URL, foreign-owned URL) or the
// contract's atomic on-chain check. The deployment is unchanged; the
// batch is the caller's fault. Match with errors.Is; other PublishBatch
// errors are infrastructure failures (e.g. the content store).
var ErrBatchRejected = errors.New("queenbee: publish batch rejected")

// RoundReceipt reports one write-side protocol round: tasks
// materialized, wave vs serial simulated costs (their ratio is the
// concurrency speedup of the round engine), mutable-DHT write counters,
// and the round's error summary. Returned by PublishBatch and RunRound.
type RoundReceipt = core.RoundReceipt

// RoundError is one recorded write-path failure of a round (see
// RoundReceipt.Errors).
type RoundError = core.RoundError

// PublishBatch stores every page's content on the DWeb, registers all of
// them in ONE smart-contract transaction — which creates ONE index task
// for the whole batch, so the assigned quorum builds a single multi-doc
// segment — and drives one protocol round to index them. Ingesting N
// pages this way costs one commit-reveal cycle and O(shards) mutable
// DHT writes instead of N cycles and O(N·shards).
//
// The batch is atomic: if any page fails validation (foreign ownership,
// duplicate URL in the batch), nothing is stored or registered and the
// returned error matches ErrBatchRejected.
func (e *Engine) PublishBatch(owner *Account, pages []Page) (RoundReceipt, error) {
	rr, err := e.Cluster.IndexBatch(owner.acct, pages)
	if errors.Is(err, core.ErrBatchInvalid) {
		return RoundReceipt{}, fmt.Errorf("%w: %w", ErrBatchRejected, err)
	}
	return rr, err
}

// Run drives n protocol rounds (bees commit, reveal, materialize).
func (e *Engine) Run(n int) {
	for i := 0; i < n; i++ {
		e.Cluster.ProcessRound()
	}
}

// RunRound drives one protocol round and returns its full receipt —
// wave costs, DHT write counters and the error summary.
func (e *Engine) RunRound() RoundReceipt {
	return e.Cluster.ProcessRoundReceipt()
}

// RunUntilIdle drives rounds until no open tasks remain.
func (e *Engine) RunUntilIdle() {
	e.Cluster.RunUntilIdle(50)
}

// Search answers a conjunctive (AND) keyword query with ranked results
// and relevant ads. It is a thin wrapper over the Query builder's flat
// All mode; use Query directly for boolean operators, exclusions,
// site: filters, pagination and Explain.
func (e *Engine) Search(query string, k int) ([]Result, []Ad, error) {
	return e.SearchCtx(context.Background(), query, k)
}

// SearchCtx is Search with a request lifecycle: cancelling ctx abandons
// the query's remaining simulated waves and fails it with
// ErrDeadlineExceeded (caches and singleflights stay consistent). Pair
// with WithDefaultDeadline or QueryCtx(...).Deadline(d) for simulated
// latency bounds.
func (e *Engine) SearchCtx(ctx context.Context, query string, k int) ([]Result, []Ad, error) {
	return collapse(e.QueryCtx(ctx, query).All().Limit(k).Run())
}

// SearchAny returns documents matching any query term (OR semantics); a
// thin wrapper over Query(...).Any().
func (e *Engine) SearchAny(query string, k int) ([]Result, []Ad, error) {
	return collapse(e.Query(query).Any().Limit(k).Run())
}

// SearchPhrase returns documents containing the query terms as an exact
// adjacent phrase (positional postings); a thin wrapper over
// Query(...).Phrase().
func (e *Engine) SearchPhrase(query string, k int) ([]Result, []Ad, error) {
	return collapse(e.Query(query).Phrase().Limit(k).Run())
}

// SearchSnippets is Search with a text snippet extracted around the
// first match of each result (costs extra content fetches); a thin
// wrapper over Query(...).All().WithSnippets().
func (e *Engine) SearchSnippets(query string, k int) ([]Result, []Ad, error) {
	return collapse(e.Query(query).All().WithSnippets().Limit(k).Run())
}

// collapse adapts a builder response to the legacy triple signature.
func collapse(resp *Response, err error) ([]Result, []Ad, error) {
	if err != nil {
		return nil, nil, err
	}
	return resp.Results, resp.Ads, nil
}

// Fetch downloads and hash-verifies the content behind a search result.
func (e *Engine) Fetch(r Result) (string, error) {
	rec, ok := e.Cluster.QB.Page(r.URL)
	if !ok {
		return "", fmt.Errorf("queenbee: %q is not a registered page", r.URL)
	}
	//detlint:ignore costdrop legacy facade returns content only; cost-accounted fetches go through Frontend.FetchResult
	data, _, err := e.pool.Frontend(0).FetchResult(core.Result{URL: r.URL, CID: rec.CID})
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// ComputeRanks runs one distributed page-rank epoch across the worker
// bees (partitioned into `partitions` verified tasks) and returns the
// epoch number once finalized.
func (e *Engine) ComputeRanks(partitions int) uint64 {
	epoch := e.Cluster.StartRankEpoch(partitions)
	e.RunUntilIdle()
	return epoch
}

// ComputeRanksDelta runs one page-rank epoch like ComputeRanks, but
// lets the contract pick the cheap path: if a finalized epoch already
// exists (and the full-recompute cadence — WithRankFullEvery — is not
// due), the epoch is incremental. The bees then re-walk only the
// subgraph reachable from the pages published since the last epoch,
// warm-started from the finalized vector, instead of iterating the
// whole graph from scratch. RankStatus reports the accumulated
// approximation drift.
func (e *Engine) ComputeRanksDelta(partitions int) uint64 {
	epoch := e.Cluster.StartRankEpochDelta(partitions)
	e.RunUntilIdle()
	return epoch
}

// RankStatus is the rank-freshness summary: latest finalized epoch,
// latest finalized FULL epoch, delta epochs accumulated since, and
// pages dirtied since the last epoch snapshot. queenbeed serves it in
// the /stats write block.
type RankStatus = contracts.RankStaleness

// RankStatus reports the current rank freshness.
func (e *Engine) RankStatus() RankStatus {
	return e.Cluster.QB.RankStaleness()
}

// PageRank returns a page's finalized rank (0 if unranked).
func (e *Engine) PageRank(url string) float64 {
	return e.Cluster.QB.PageRank(url)
}

// PayPopularityRewards mints threshold honey to providers of popular
// pages for a finalized epoch. It returns an error if nothing was owed.
func (e *Engine) PayPopularityRewards(epoch uint64) error {
	tx := e.Cluster.PayPopularity(epoch)
	r := e.Cluster.Chain.Receipt(tx.Hash())
	if r == nil || !r.OK {
		return fmt.Errorf("queenbee: popularity payout: %s", receiptErr(r))
	}
	return nil
}

// RegisterAd escrows a budget and opens a pay-per-click campaign.
func (e *Engine) RegisterAd(advertiser *Account, keywords []string, bidPerClick, budget uint64) (uint64, error) {
	tx := e.Cluster.SubmitCall(advertiser.acct, contracts.MethodRegisterAd,
		contracts.RegisterAdParams{Keywords: keywords, BidPerClick: bidPerClick}, budget)
	e.Cluster.Seal()
	r := e.Cluster.Chain.Receipt(tx.Hash())
	if r == nil || !r.OK {
		return 0, fmt.Errorf("queenbee: register ad: %s", receiptErr(r))
	}
	// The campaign ID comes from the registration event the contract
	// emitted for exactly this transaction — deterministic even when
	// other registrations land in the same block.
	for _, ev := range e.Cluster.Chain.EventsFor(tx.Hash()) {
		if ev.Type != contracts.EventAdRegistered {
			continue
		}
		id, err := strconv.ParseUint(ev.Attrs["ad"], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("queenbee: register ad: bad campaign id %q in event", ev.Attrs["ad"])
		}
		return id, nil
	}
	return 0, fmt.Errorf("queenbee: register ad: transaction emitted no registration event")
}

// Click records a paid click on an ad displayed on a result page. The
// bid moves from the advertiser's budget to the page's creator and the
// worker pool.
func (e *Engine) Click(user *Account, adID uint64, url string) error {
	tx := e.Cluster.SubmitCall(user.acct, contracts.MethodClick,
		contracts.ClickParams{AdID: adID, URL: url}, 0)
	e.Cluster.Seal()
	r := e.Cluster.Chain.Receipt(tx.Hash())
	if r == nil || !r.OK {
		return fmt.Errorf("queenbee: click: %s", receiptErr(r))
	}
	return nil
}

// Summary reports deployment-level counters.
type Summary struct {
	Pages          int
	Height         uint64
	HoneySupply    uint64
	TasksOpen      int
	TasksFinalized int
	TasksFailed    int
	Workers        int
}

// CacheStats is a snapshot of the query frontends' cache occupancy and
// traffic counters (re-exported for serving surfaces like queenbeed).
type CacheStats = core.CacheStats

// RepairStats is a snapshot of the self-healing loops' accumulated
// counters: keys probed, records republished, segments re-seeded or
// lost, providers re-announced, and the simulated traffic spent.
type RepairStats = core.RepairStats

// WriteStats is the write path's cumulative ledger: rounds driven,
// segment/pointer/stats puts, compactions, ingested vs compacted bytes
// (their ratio is the write amplification E19 tabulates), and the
// current per-tier segment histogram across all shards.
type WriteStats = core.WriteStats

// Degraded is the typed warning a partial answer carries under
// WithDegradedReads: which shards failed, the completeness fraction,
// and the first underlying cause.
type Degraded = core.Degraded

// Readiness is the serving-health summary behind queenbeed's /readyz:
// per-shard pointer reachability through a live DHT node.
type Readiness = core.Readiness

// FaultPlan is a deterministic schedule of churn events, installed with
// WithFaultPlan (re-exported from the network simulation).
type FaultPlan = netsim.FaultPlan

// FaultEvent is one scripted entry of a FaultPlan.
type FaultEvent = netsim.FaultEvent

// FaultKind discriminates FaultEvent entries.
type FaultKind = netsim.FaultKind

// Re-exported fault kinds, so fault plans can be scripted without
// importing the network simulation.
const (
	FaultCrash     = netsim.FaultCrash
	FaultRecover   = netsim.FaultRecover
	FaultPartition = netsim.FaultPartition
	FaultHeal      = netsim.FaultHeal
	FaultDropRate  = netsim.FaultDropRate
)

// PoolStats is a snapshot of the serving tier: per-frontend load
// counters (served, in-flight, accumulated simulated busy time, hedges,
// caches) plus the deadline-miss count.
type PoolStats = core.PoolStats

// FrontendLoad is one frontend's serving counters (see PoolStats).
type FrontendLoad = core.FrontendLoad

// CacheStats reports cache occupancy against the configured byte
// budgets, aggregated across every frontend in the pool (each frontend
// owns independent caches; budgets and counters are summed).
func (e *Engine) CacheStats() CacheStats {
	return e.pool.CacheStatsSnapshot()
}

// PoolStats reports the serving tier's per-frontend load and the
// deadline-miss count.
func (e *Engine) PoolStats() PoolStats {
	return e.pool.Stats()
}

// RepairStats reports what the self-healing loops have done so far
// (WithMaintenance runs them after every round; RunMaintenance drives a
// pass by hand).
func (e *Engine) RepairStats() RepairStats {
	return e.Cluster.RepairStats()
}

// WriteStats reports the engine's cumulative write-path ledger. Served
// from in-memory accumulators — no DHT traffic, so calling it never
// perturbs the simulation's RNG draws.
func (e *Engine) WriteStats() WriteStats {
	return e.Cluster.WriteStats()
}

// RunMaintenance drives one self-healing pass — republish, re-seed,
// reprovide — and returns what this pass did. Useful for deployments
// that schedule repair themselves instead of opting into
// WithMaintenance's per-round hook.
func (e *Engine) RunMaintenance() RepairStats {
	return e.Cluster.RunMaintenance()
}

// Ready probes every shard pointer and reports serving readiness: the
// deployment is ready when each shard's index is reachable through a
// live DHT node (never-written shards count healthy). queenbeed serves
// this as /readyz.
func (e *Engine) Ready() Readiness {
	return e.Cluster.Readiness()
}

// Stats returns the current deployment summary.
func (e *Engine) Stats() Summary {
	open, finalized, failed := e.Cluster.QB.TaskCounts()
	return Summary{
		Pages:          e.Cluster.QB.PageCount(),
		Height:         e.Cluster.Chain.Height(),
		HoneySupply:    e.Cluster.Chain.State().Supply(),
		TasksOpen:      open,
		TasksFinalized: finalized,
		TasksFailed:    failed,
		Workers:        len(e.Cluster.QB.ActiveWorkers()),
	}
}

func receiptErr(r *chain.Receipt) string {
	if r == nil {
		return "no receipt"
	}
	return r.Err
}
