// Quickstart: the smallest complete QueenBee session — publish pages
// through the smart contract, let the worker bees index them, search
// with both the one-line facade and the structured query builder, and
// fetch the tamper-proof content back.
package main

import (
	"fmt"
	"log"

	queenbee "repro"
)

func main() {
	// Boot a small simulated deployment: 12 DWeb devices, 3 worker bees.
	engine := queenbee.New(
		queenbee.WithSeed(42),
		queenbee.WithPeers(12),
		queenbee.WithBees(3),
	)

	// A content creator with some honey.
	alice := engine.NewAccount("alice", 1_000)

	// Publish: content goes to the DWeb store, the URL→CID binding and
	// the index task go on chain. No crawler will ever visit these pages —
	// the publish event itself drives indexing.
	pages := []struct{ url, text string }{
		{"dweb://alice/honey-guide", "A practical guide to harvesting honey from decentralized hives."},
		{"dweb://alice/wax-guide", "Harvesting wax combs without disturbing the honey stores."},
		{"dweb://bob/beekeeping", "Beekeeping basics: hives, honey flows, and seasonal care."},
	}
	for _, p := range pages {
		if err := engine.Publish(alice, p.url, p.text, nil); err != nil {
			log.Fatal(err)
		}
	}

	// Worker bees pick up the index tasks, vote on the results by
	// commit-reveal, and materialize the winning segments into the DHT.
	engine.RunUntilIdle()

	// Search from any device.
	results, _, err := engine.Search("harvesting honey", 10)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("%d. %s (score %.3f)\n", i+1, r.URL, r.Score)
	}

	// The structured query builder speaks a full boolean language —
	// uppercase OR/AND, '-' exclusions, "quoted phrases", site: URL
	// prefix filters — with pagination and an execution trace.
	resp, err := engine.Query(`honey -wax site:dweb://alice/`).
		Page(1, 5).
		Explain().
		Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("structured query → %d of %d matches\n", len(resp.Results), resp.Total)
	for i, r := range resp.Results {
		fmt.Printf("%d. %s (score %.3f)\n", i+1, r.URL, r.Score)
	}
	fmt.Print(resp.Explain)

	// Fetch the content back — hash-verified end to end.
	content, err := engine.Fetch(results[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("content:", content)

	s := engine.Stats()
	fmt.Printf("pages=%d tasks=%d height=%d supply=%d\n",
		s.Pages, s.TasksFinalized, s.Height, s.HoneySupply)
}
