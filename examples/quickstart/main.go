// Quickstart: the smallest complete QueenBee session — publish a page
// through the smart contract, let the worker bees index it, search it,
// and fetch the tamper-proof content back.
package main

import (
	"fmt"
	"log"

	queenbee "repro"
)

func main() {
	// Boot a small simulated deployment: 12 DWeb devices, 3 worker bees.
	engine := queenbee.New(
		queenbee.WithSeed(42),
		queenbee.WithPeers(12),
		queenbee.WithBees(3),
	)

	// A content creator with some honey.
	alice := engine.NewAccount("alice", 1_000)

	// Publish: content goes to the DWeb store, the URL→CID binding and
	// the index task go on chain. No crawler will ever visit this page —
	// the publish event itself drives indexing.
	err := engine.Publish(alice,
		"dweb://alice/honey-guide",
		"A practical guide to harvesting honey from decentralized hives.",
		nil)
	if err != nil {
		log.Fatal(err)
	}

	// Worker bees pick up the index task, vote on the result by
	// commit-reveal, and materialize the winning segment into the DHT.
	engine.RunUntilIdle()

	// Search from any device.
	results, _, err := engine.Search("harvesting honey", 10)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("%d. %s (score %.3f)\n", i+1, r.URL, r.Score)
	}

	// Fetch the content back — hash-verified end to end.
	content, err := engine.Fetch(results[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("content:", content)

	s := engine.Stats()
	fmt.Printf("pages=%d tasks=%d height=%d supply=%d\n",
		s.Pages, s.TasksFinalized, s.Height, s.HoneySupply)
}
