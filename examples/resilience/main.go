// Resilience: the DWeb advantages the paper opens with — the same
// QueenBee deployment keeps answering queries while a growing fraction
// of the swarm is down, and recovers fully after a DHT refresh. A
// centralized engine's availability is a step function on one machine.
package main

import (
	"fmt"
	"log"

	queenbee "repro"
	"repro/internal/core"
)

func main() {
	engine := queenbee.New(
		queenbee.WithSeed(3),
		queenbee.WithPeers(24),
		queenbee.WithBees(3),
	)
	alice := engine.NewAccount("alice", 10_000)

	markers := make([]string, 12)
	for i := range markers {
		markers[i] = fmt.Sprintf("resiliencemarker%02d", i)
		url := fmt.Sprintf("dweb://site/%02d", i)
		if err := engine.Publish(alice, url, "stable page body "+markers[i], nil); err != nil {
			log.Fatal(err)
		}
	}
	engine.RunUntilIdle()

	cluster := engine.Cluster // the simulation escape hatch
	searchable := func(fe *core.Frontend) int {
		hits := 0
		for _, m := range markers {
			if resp, err := fe.Search(m, 3); err == nil && len(resp.Results) > 0 {
				hits++
			}
		}
		return hits
	}

	fe := core.NewFrontend(cluster, cluster.Bees[0].Peer)
	fmt.Printf("healthy swarm:          %2d/%d pages searchable\n", searchable(fe), len(markers))

	failed := cluster.FailPeers(0.25)
	fe = core.NewFrontend(cluster, cluster.Bees[1].Peer)
	fmt.Printf("25%% of peers down:      %2d/%d pages searchable\n", searchable(fe), len(markers))

	more := cluster.FailPeers(0.35) // cumulative ≈ 50%
	fe = core.NewFrontend(cluster, cluster.Bees[2].Peer)
	fmt.Printf("~50%% of peers down:     %2d/%d pages searchable\n", searchable(fe), len(markers))

	fmt.Println("running DHT refresh (survivors re-replicate records)…")
	refreshCost := cluster.RefreshDHT()
	fmt.Printf("refresh traffic:        %d msgs, %d bytes\n", refreshCost.Msgs, refreshCost.Bytes)
	fe = core.NewFrontend(cluster, cluster.Bees[0].Peer)
	fmt.Printf("after refresh:          %2d/%d pages searchable\n", searchable(fe), len(markers))

	cluster.HealPeers(append(failed, more...))
	fe = core.NewFrontend(cluster, cluster.Bees[1].Peer)
	fmt.Printf("peers healed:           %2d/%d pages searchable\n", searchable(fe), len(markers))

	fmt.Println("\ncontrast: a centralized engine answers 0 queries the moment its")
	fmt.Println("one server is in the failed set (see cmd/experiments -exp E3).")
}
