// Attacksim: the two attacks the paper predicts, run against QueenBee's
// defenses — colluding worker bees versus commit-reveal quorum voting
// with slashing, and a scraper site versus MinHash duplicate demotion.
package main

import (
	"fmt"

	"repro/internal/attack"
)

func main() {
	fmt.Println("=== collusion attack (paper: 'colluded worker bees … manipulating QueenBee's indexes') ===")
	fmt.Println("5 worker bees, 12 publish tasks; sweep colluders × quorum size:")
	fmt.Printf("%-10s %-7s %-10s %-12s %-12s\n", "colluders", "quorum", "corrupted", "corruption%", "stake burned")
	for _, quorum := range []int{1, 3, 5} {
		for _, colluders := range []int{0, 1, 2, 3} {
			r := attack.RunCollusion(1, 5, colluders, quorum, 12)
			fmt.Printf("%-10d %-7d %-10d %-12.1f %-12d\n",
				colluders, quorum, r.Corrupted, 100*r.CorruptionRate(), r.ColluderStake)
		}
	}
	fmt.Println("\nreading: a minority of colluders is outvoted and loses stake on every")
	fmt.Println("attempt; only a colluding majority of the assigned quorum corrupts tasks.")

	fmt.Println("\n=== scraper-site attack (paper: 'mirror popular websites for QueenBee's honey') ===")
	for _, defense := range []bool{false, true} {
		r := attack.RunScraper(1, defense)
		mode := "defense OFF"
		if defense {
			mode = "defense ON (MinHash dedup)"
		}
		fmt.Printf("\n%s\n", mode)
		fmt.Printf("  original site: rank=%.4f, popularity honey=%d\n", r.OriginalRank, r.OriginalHoney)
		fmt.Printf("  scraper mirror: rank=%.4f, popularity honey=%d\n", r.ScraperRank, r.ScraperHoney)
		fmt.Printf("  legitimate pages wrongly demoted: %d\n", r.FalseDemotions)
	}
	fmt.Println("\nreading: without the defense the mirror farms the same popularity honey")
	fmt.Println("as the original; with MinHash demotion inside the verified rank tasks the")
	fmt.Println("mirror earns nothing and no legitimate page is harmed.")
}
