// Wikipedia: the paper's motivating deployment — a wiki snapshot hosted
// on the DWeb with QueenBee as its search engine. This example publishes
// a synthetic Wikipedia stand-in (Zipf vocabulary, preferential-
// attachment link graph), runs a distributed page-rank epoch, pays
// popularity rewards to the providers of well-linked articles, and
// answers queries blending BM25 with page rank.
package main

import (
	"fmt"
	"log"

	queenbee "repro"
	"repro/internal/corpus"
)

func main() {
	engine := queenbee.New(
		queenbee.WithSeed(7),
		queenbee.WithPeers(20),
		queenbee.WithBees(5),
		queenbee.WithRankWeight(2.0),
		queenbee.WithPopularityThreshold(0.01),
	)

	// Ten independent editors publish the snapshot.
	editors := make([]*queenbee.Account, 10)
	for i := range editors {
		editors[i] = engine.NewAccount(fmt.Sprintf("editor-%02d", i), 10_000)
	}

	cfg := corpus.DefaultConfig()
	cfg.Seed = 7
	cfg.NumDocs = 80
	cfg.MeanDocLen = 80
	wiki := corpus.Generate(cfg)

	fmt.Printf("publishing %d wiki articles…\n", len(wiki.Docs))
	for i, d := range wiki.Docs {
		if err := engine.Publish(editors[i%len(editors)], d.URL, d.Text, d.Links); err != nil {
			log.Fatal(err)
		}
		if i%20 == 19 {
			engine.Run(2) // bees keep up while publishing continues
		}
	}
	engine.RunUntilIdle()
	s := engine.Stats()
	fmt.Printf("indexed: %d articles, %d verified tasks\n", s.Pages, s.TasksFinalized)

	fmt.Println("computing page ranks across 4 worker-bee partitions…")
	epoch := engine.ComputeRanks(4)
	if err := engine.PayPopularityRewards(epoch); err != nil {
		fmt.Println("(no popularity rewards due)", err)
	}

	// An editor updates an article — searchable within seconds, because
	// there is no crawler to wait for.
	update := wiki.Revise(3, 1, 0.5)
	if err := engine.Publish(editors[3%len(editors)], update.URL, update.Text+" freshlyedited", update.Links); err != nil {
		log.Fatal(err)
	}
	engine.RunUntilIdle()
	if res, _, _ := engine.Search("freshlyedited", 3); len(res) == 1 {
		fmt.Println("update searchable immediately after publish:", res[0].URL)
	}

	// Queries sampled from article text.
	for _, q := range wiki.Queries(1, 4, 2) {
		results, _, err := engine.Search(q.Text, 3)
		if err != nil {
			continue
		}
		fmt.Printf("\nquery %q\n", q.Text)
		for i, r := range results {
			fmt.Printf("  %d. %-28s score=%.3f rank=%.4f\n", i+1, r.URL, r.Score, r.Rank)
		}
	}

	// Which editors got popularity honey?
	fmt.Println("\neditor balances (10000 honey at start):")
	for _, e := range editors {
		fmt.Printf("  %-10s %6d\n", e.Name(), engine.Balance(e))
	}
}
