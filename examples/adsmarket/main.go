// Adsmarket: QueenBee's decentralized advertising economy — advertisers
// escrow budgets in the smart contract, pay per click, and the revenue is
// split between content creators and the worker-bee pool, exactly as the
// paper proposes ("the ad revenue is shared among the content creators
// and worker bees").
package main

import (
	"fmt"
	"log"

	queenbee "repro"
)

func main() {
	engine := queenbee.New(
		queenbee.WithSeed(11),
		queenbee.WithPeers(12),
		queenbee.WithBees(4),
	)

	creator := engine.NewAccount("creator", 1_000)
	nike := engine.NewAccount("shoe-brand", 50_000)
	cola := engine.NewAccount("drink-brand", 50_000)
	user := engine.NewAccount("searcher", 100)

	// The creator publishes review pages.
	pages := map[string]string{
		"dweb://reviews/runners":  "detailed review of marathon running shoes and trail runners",
		"dweb://reviews/hydrate":  "comparing sports drinks for marathon hydration strategy",
		"dweb://reviews/training": "marathon training schedules for beginners",
	}
	for url, text := range pages {
		if err := engine.Publish(creator, url, text, nil); err != nil {
			log.Fatal(err)
		}
	}
	engine.RunUntilIdle()

	// Two advertisers bid on the "marathon" keyword; the higher bid is
	// displayed first.
	shoeAd, err := engine.RegisterAd(nike, []string{"marathon", "shoes"}, 50, 2_000)
	if err != nil {
		log.Fatal(err)
	}
	drinkAd, err := engine.RegisterAd(cola, []string{"marathon", "drinks"}, 30, 1_500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaigns open: shoe ad #%d (bid 50), drink ad #%d (bid 30)\n", shoeAd, drinkAd)

	results, ads, err := engine.Search("marathon training", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsearch 'marathon training': %d results, %d ads\n", len(results), len(ads))
	for _, ad := range ads {
		fmt.Printf("  ad #%d keywords=%v bid=%d\n", ad.ID, ad.Keywords, ad.BidPerClick)
	}

	// The user clicks the top ad a few times on the top result page.
	creatorStart := engine.Balance(creator)
	for i := 0; i < 5; i++ {
		if err := engine.Click(user, ads[0].ID, results[0].URL); err != nil {
			fmt.Println("click rejected:", err)
			break
		}
	}
	fmt.Printf("\nafter 5 clicks at bid %d:\n", ads[0].BidPerClick)
	fmt.Printf("  creator earned      %d honey (60%% of each click)\n", engine.Balance(creator)-creatorStart)
	fmt.Printf("  advertiser balance  %d honey\n", engine.Balance(nike))
	fmt.Printf("  honey supply        %d (conserved by the contract)\n", engine.Stats().HoneySupply)
}
