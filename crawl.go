package queenbee

import (
	"context"
	"time"

	"repro/internal/ingest"
)

// IngestStats is the streaming pipeline's counter/timing snapshot:
// fetched, deduped, published, queue depth/wait, round phase busy
// times, simulated makespan, and the derived sim pages/s and pipelining
// speedup (see docs/ingest.md).
type IngestStats = ingest.Stats

// CrawlOptions tunes Engine.Crawl. The zero value of every field is
// usable: a nil Owner gets a freshly funded crawler account, and the
// pipeline knobs fall back to the ingest package defaults.
type CrawlOptions struct {
	// Owner publishes every crawled batch. Nil creates and funds a
	// "crawler" account for this crawl.
	Owner *Account
	// Pages is the crawlable web: URLs resolve against this set, links
	// walk it. Links pointing outside it count as dangling.
	Pages []Page
	// FetchWorkers, QueueDepth, BatchSize, MaxPages, Serial,
	// DedupThreshold, FetchFailRate and MeanFetchLatency map directly
	// onto ingest.Options (zero values select the defaults there).
	FetchWorkers     int
	QueueDepth       int
	BatchSize        int
	MaxPages         int
	Serial           bool
	DedupThreshold   float64
	FetchFailRate    float64
	MeanFetchLatency time.Duration
	// RankEvery drives one delta-scheduled page-rank epoch after every
	// RankEvery batches (0 = never), so rank freshness rides the crawl
	// instead of waiting for a terminal ComputeRanks. RankPartitions is
	// each epoch's partition count (0 = one partition). The full-recompute
	// cadence comes from WithRankFullEvery.
	RankEvery      int
	RankPartitions int
}

// Crawl runs the streaming ingest pipeline against this deployment:
// fetch workers walk the link graph from seeds, pages are extracted and
// near-duplicates demoted, and accepted pages are indexed through real
// publish rounds in BatchSize batches — batch N+1's commit overlapping
// round N's reveal in the simulated-time model. The randomness seed is
// the deployment's (WithSeed), so a crawl is a pure function of the
// engine configuration, the page set and the seeds: it leaves the DHT
// byte-identical to a sequential PublishBatch loop over the same pages.
//
// Crawl is a mutating method — like Publish and Run it must not run
// concurrently with other mutations or with queries. Cancelling ctx
// abandons the crawl and returns ctx's error with partial stats.
// Successful or not, the crawl's counters accumulate into IngestStats.
func (e *Engine) Crawl(ctx context.Context, seeds []string, o CrawlOptions) (IngestStats, error) {
	owner := o.Owner
	if owner == nil {
		owner = e.NewAccount("crawler", 1_000_000)
	}
	st, err := ingest.Crawl(ctx,
		ingest.MapSource(o.Pages),
		ingest.NewClusterSink(e.Cluster, owner.acct),
		seeds,
		ingest.Options{
			Seed:             e.Cluster.Config().Seed,
			FetchWorkers:     o.FetchWorkers,
			QueueDepth:       o.QueueDepth,
			BatchSize:        o.BatchSize,
			MaxPages:         o.MaxPages,
			Serial:           o.Serial,
			DedupThreshold:   o.DedupThreshold,
			FetchFailRate:    o.FetchFailRate,
			MeanFetchLatency: o.MeanFetchLatency,
			RankEvery:        o.RankEvery,
			RankPartitions:   o.RankPartitions,
		})
	e.ingestMu.Lock()
	e.ingest.Merge(st)
	e.ingestMu.Unlock()
	return st, err
}

// IngestStats returns the accumulated counters of every Crawl driven on
// this engine (zero value if none ran). Safe to call concurrently with
// queries; queenbeed serves it under GET /stats.
func (e *Engine) IngestStats() IngestStats {
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()
	return e.ingest
}
