package queenbee

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dht"
	"repro/internal/index"
)

// ingestWorkload drives one mixed write-side workload against an
// engine: a batch publish, individual publishes, a batch republish
// (freshness + stats dedup) and enough rounds to drain every task.
func ingestWorkload(tb testing.TB, e *Engine, seed uint64) {
	tb.Helper()
	owner := e.NewAccount("ingest-owner", 10_000_000)
	ccfg := corpus.DefaultConfig()
	ccfg.Seed = seed
	ccfg.NumDocs = 18
	corp := corpus.Generate(ccfg)

	// The first 12 documents land as one batch → one index task.
	batch := make([]Page, 0, 12)
	for _, d := range corp.Docs[:12] {
		batch = append(batch, Page{URL: d.URL, Text: d.Text, Links: d.Links})
	}
	if rr, err := e.PublishBatch(owner, batch); err != nil {
		tb.Fatal(err)
	} else if len(rr.Errors) > 0 {
		tb.Fatalf("batch round errors: %v", rr.Errors)
	}
	// The rest publish individually — many tasks in shared rounds.
	for _, d := range corp.Docs[12:] {
		if err := e.Publish(owner, d.URL, d.Text, d.Links); err != nil {
			tb.Fatal(err)
		}
	}
	// Republish two pages (Seq 2) in a second batch.
	if _, err := e.PublishBatch(owner, []Page{
		{URL: corp.Docs[0].URL, Text: corp.Docs[0].Text + " freshly revised"},
		{URL: corp.Docs[1].URL, Text: corp.Docs[1].Text + " also revised"},
	}); err != nil {
		tb.Fatal(err)
	}
	e.RunUntilIdle()
}

// dhtWriteState serializes every write-side DHT record of a deployment:
// each shard's pointer record, every linked segment's raw bytes (by
// digest) and the global stats record. This is the state the write-side
// determinism contract covers.
func dhtWriteState(tb testing.TB, e *Engine) string {
	tb.Helper()
	d := e.Cluster.Peers[1].DHT()
	state := struct {
		Shards map[int]json.RawMessage
		Segs   map[string]string
		Stats  json.RawMessage
	}{Shards: map[int]json.RawMessage{}, Segs: map[string]string{}}

	numShards := e.Cluster.Config().NumShards
	for shard := 0; shard < numShards; shard++ {
		val, _, _, err := d.Get(dht.KeyOfString(index.ShardPointerKey(shard)))
		if err != nil {
			continue // untouched shard
		}
		state.Shards[shard] = append(json.RawMessage(nil), val...)
		var ptr struct{ Digests []string }
		if err := json.Unmarshal(val, &ptr); err != nil {
			tb.Fatalf("shard %d: corrupt pointer %q: %v", shard, val, err)
		}
		for _, dg := range ptr.Digests {
			seg, _, err := d.GetImmutable(dht.KeyOfString(index.SegmentKey(dg)))
			if err != nil {
				tb.Fatalf("segment %s unreachable: %v", dg[:8], err)
			}
			state.Segs[dg] = string(seg)
		}
	}
	if val, _, _, err := d.Get(dht.KeyOfString(core.StatsKey)); err == nil {
		state.Stats = append(json.RawMessage(nil), val...)
	}
	out, err := json.Marshal(state)
	if err != nil {
		tb.Fatal(err)
	}
	return string(out)
}

// TestWriteDeterminismSoak is the write-side determinism contract: the
// same seed and workload must leave byte-identical DHT state — shard
// pointers, segment bytes, stats — whether the round engine fans its
// waves out across goroutines (the default) or runs them sequentially
// (WithParallelRounds(false)). Runs under -race in CI and inside the
// -count=2 determinism re-run. Costs are exempt: concurrent writers
// sharing a link may interleave draws, results may not.
func TestWriteDeterminismSoak(t *testing.T) {
	const seed = 11
	parallel := New(WithSeed(seed), WithPeers(10), WithBees(4))
	sequential := New(WithSeed(seed), WithPeers(10), WithBees(4), WithParallelRounds(false))
	ingestWorkload(t, parallel, seed)
	ingestWorkload(t, sequential, seed)

	if got, want := dhtWriteState(t, parallel), dhtWriteState(t, sequential); got != want {
		t.Fatalf("DHT state diverged between parallel and sequential rounds:\nparallel   %s\nsequential %s", got, want)
	}

	// And the query side sees identical answers over that state.
	for _, q := range []string{"the", "document"} {
		rp, errP := parallel.Query(q).Any().Limit(10).Run()
		rs, errS := sequential.Query(q).Any().Limit(10).Run()
		if (errP == nil) != (errS == nil) {
			t.Fatalf("query %q error diverged: %v vs %v", q, errP, errS)
		}
		if errP != nil {
			continue
		}
		if canonical(t, rp) != canonical(t, rs) {
			t.Fatalf("query %q diverged:\nparallel   %s\nsequential %s", q, canonical(t, rp), canonical(t, rs))
		}
	}
}

// TestWriteDeterminismSameSeedTwice re-runs the parallel engine on one
// seed and asserts the DHT state reproduces run-over-run — goroutine
// scheduling must never leak into written state.
func TestWriteDeterminismSameSeedTwice(t *testing.T) {
	build := func() string {
		e := New(WithSeed(23), WithPeers(10), WithBees(4))
		ingestWorkload(t, e, 23)
		return dhtWriteState(t, e)
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("same-seed runs diverged:\nfirst  %s\nsecond %s", a, b)
	}
}

// TestIngestPipelineDeterminism is the streaming-ingest determinism
// contract (ISSUE 7 acceptance): a pipelined crawl — real fetch worker
// goroutines, bounded queue at depth 4, 8 bees — must leave the DHT
// byte-identical to a plain sequential PublishBatch loop over the same
// pages under the same seed, and to the same crawl with serial (non-
// overlapping) rounds. Pipelining must only show up in the simulated
// makespan. Runs under -race and in the -count=2 determinism re-run.
func TestIngestPipelineDeterminism(t *testing.T) {
	const seed = 7
	const batchSize = 16
	ccfg := corpus.DefaultConfig()
	ccfg.Seed = seed
	ccfg.NumDocs = 48
	corp := corpus.Generate(ccfg)
	pages := make([]Page, len(corp.Docs))
	seeds := make([]string, len(corp.Docs))
	for i, d := range corp.Docs {
		pages[i] = Page{URL: d.URL, Text: d.Text, Links: d.Links}
		seeds[i] = d.URL
	}
	boot := func() (*Engine, *Account) {
		e := New(WithSeed(seed), WithPeers(12), WithBees(8))
		return e, e.NewAccount("crawler", 10_000_000)
	}
	// Seeding every URL makes the reference loop trivial to construct:
	// frontier order is URL order, so batches are consecutive slices.
	// Dedup is off so batch membership is position-independent; the
	// demotion path has its own determinism coverage in internal/ingest.
	opts := CrawlOptions{
		Pages: pages, QueueDepth: 4, BatchSize: batchSize,
		FetchWorkers: 4, DedupThreshold: -1,
	}

	crawled, owner := boot()
	opts.Owner = owner
	st, err := crawled.Crawl(context.Background(), seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Published != len(pages) || st.Batches != 3 || st.RoundErrors != 0 {
		t.Fatalf("crawl stats %+v", st)
	}
	if st.Makespan >= st.SerialMakespan {
		t.Fatalf("pipelined rounds gained nothing: makespan %v vs serial %v",
			st.Makespan, st.SerialMakespan)
	}

	serialed, serialOwner := boot()
	sopts := opts
	sopts.Owner = serialOwner
	sopts.Serial = true
	if _, err := serialed.Crawl(context.Background(), seeds, sopts); err != nil {
		t.Fatal(err)
	}

	ref, refOwner := boot()
	for i := 0; i < len(pages); i += batchSize {
		end := i + batchSize
		if end > len(pages) {
			end = len(pages)
		}
		if _, err := ref.PublishBatch(refOwner, pages[i:end]); err != nil {
			t.Fatal(err)
		}
	}

	want := dhtWriteState(t, ref)
	if got := dhtWriteState(t, crawled); got != want {
		t.Fatalf("pipelined crawl DHT state diverged from sequential PublishBatch loop:\ncrawl %s\nloop  %s", got, want)
	}
	if got := dhtWriteState(t, serialed); got != want {
		t.Fatalf("serial-rounds crawl DHT state diverged from sequential PublishBatch loop:\ncrawl %s\nloop  %s", got, want)
	}
	if agg := crawled.IngestStats(); agg != st {
		t.Fatalf("engine accumulator %+v != crawl stats %+v", agg, st)
	}
}

// TestIngestStatsRerunIdentical pins the COST side of the crawl's
// determinism contract: two fresh engines, same seed, full Stats
// structs equal — including the simulated wave costs (CommitBusy,
// RevealBusy, Makespan). This is what state-only comparisons miss:
// concurrent bees in a parallel commit wave used to announce their
// serve-cache provider records mid-wave, so a sibling's FindProviders
// cost depended on goroutine interleaving (the records are now queued
// and flushed in bee order after the wave). The crawl's fetch workers
// keep the scheduler busy enough to hit that window reliably.
func TestIngestStatsRerunIdentical(t *testing.T) {
	run := func() IngestStats {
		e := New(WithSeed(11), WithPeers(12), WithBees(4))
		ccfg := corpus.DefaultConfig()
		ccfg.Seed = 11
		ccfg.NumDocs = 24
		corp := corpus.Generate(ccfg)
		pages := make([]Page, len(corp.Docs))
		seeds := make([]string, len(corp.Docs))
		for i, d := range corp.Docs {
			pages[i] = Page{URL: d.URL, Text: d.Text, Links: d.Links}
			seeds[i] = d.URL
		}
		st, err := e.Crawl(context.Background(), seeds, CrawlOptions{
			Pages: pages, QueueDepth: 4, BatchSize: 8, FetchWorkers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	base := run()
	for trial := 0; trial < 2; trial++ {
		if st := run(); st != base {
			t.Fatalf("crawl stats diverged on rerun %d:\n  base %+v\n  got  %+v", trial, base, st)
		}
	}
}

// TestIngestConcurrentThroughput is the write-side counterpart of
// TestQueryConcurrentThroughput: one round ingesting a spread of tasks
// across 8 bees must cost (in simulated time) at most half of what the
// sequential drive pays — the ≥2× write concurrency claim BenchmarkIngest
// reports. Costs come from real goroutine executions, so -race patrols
// the same path.
func TestIngestConcurrentThroughput(t *testing.T) {
	e := New(WithSeed(5), WithPeers(16), WithBees(8))
	owner := e.NewAccount("throughput-owner", 10_000_000)
	for i := 0; i < 32; i++ {
		if _, err := e.Cluster.Publish(owner.acct, e.Cluster.RandomPeer(),
			fmt.Sprintf("dweb://tp/%03d", i),
			fmt.Sprintf("throughput workload document %03d with shared vocabulary", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	e.Cluster.Seal()

	var serial, wave time.Duration
	for r := 0; r < 8; r++ {
		rr := e.RunRound()
		serial += rr.Serial().Latency
		wave += rr.Wave().Latency
		if open, _, _ := e.Cluster.QB.TaskCounts(); open == 0 {
			break
		}
	}
	if open, _, _ := e.Cluster.QB.TaskCounts(); open != 0 {
		t.Fatalf("%d tasks still open", open)
	}
	if wave == 0 {
		t.Fatal("rounds accumulated no simulated cost")
	}
	speedup := float64(serial) / float64(wave)
	t.Logf("write-side simulated makespan: serial %v, wave %v → %.1f× at 8 bees", serial, wave, speedup)
	if speedup < 2 {
		t.Fatalf("write-side speedup at 8 bees = %.2f×, want ≥ 2×", speedup)
	}
}
